package pathexprsol

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/pathexpr"
)

// These tests pin the figure implementations to the paper's text and the
// dialect-specific constructions (the pass gate, the numeric operator).

func TestFigure1PathsMatchPaper(t *testing.T) {
	paths, err := pathexpr.ParseList(Figure1Paths)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"path writeattempt end",
		"path {requestread} , requestwrite end",
		"path {read} , (openwrite ; write) end",
	}
	if len(paths) != len(want) {
		t.Fatalf("paths = %d", len(paths))
	}
	for i, p := range paths {
		if p.String() != want[i] {
			t.Errorf("path %d = %q, want %q", i+1, p, want[i])
		}
	}
}

func TestFigure2PathsMatchPaper(t *testing.T) {
	paths, err := pathexpr.ParseList(Figure2Paths)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"path readattempt end",
		"path requestread , {requestwrite} end",
		"path {openread ; read} , write end",
	}
	for i, p := range paths {
		if p.String() != want[i] {
			t.Errorf("path %d = %q, want %q", i+1, p, want[i])
		}
	}
}

// The Figure-1 anomaly, on the exact FIFO schedule: writer1 writes;
// reader and writer2 arrive mid-write; writer2 wins. This is the paper's
// footnote-3 narrative as a deterministic test (the exploration-based
// version lives in package eval).
func TestFigure1AnomalyDeterministic(t *testing.T) {
	k := kernel.NewSim(kernel.WithPolicy(kernel.Random(1)))
	db := NewReadersPriority()
	var order []string
	k.Spawn("writer1", func(p *kernel.Proc) {
		db.Write(p, func() {
			order = append(order, "w1")
			for i := 0; i < 6; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("reader", func(p *kernel.Proc) {
		p.Yield()
		db.Read(p, func() { order = append(order, "r") })
	})
	k.Spawn("writer2", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		db.Write(p, func() { order = append(order, "w2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Under this seed the anomaly manifests: w2 before r.
	if fmt.Sprint(order) != "[w1 w2 r]" {
		t.Skipf("schedule did not trigger the anomaly (order %v); eval's exploration covers it", order)
	}
}

// Figure 2's behavior on the same arrival pattern: writer2 before the
// reader is REQUIRED there.
func TestFigure2PrefersSecondWriter(t *testing.T) {
	k := kernel.NewSim()
	db := NewWritersPriority()
	var order []string
	k.Spawn("writer1", func(p *kernel.Proc) {
		db.Write(p, func() {
			order = append(order, "w1")
			for i := 0; i < 6; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("reader", func(p *kernel.Proc) {
		p.Yield()
		db.Read(p, func() { order = append(order, "r") })
	})
	k.Spawn("writer2", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		db.Write(p, func() { order = append(order, "w2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[w1 w2 r]" {
		t.Fatalf("order = %v, want the writer preferred", order)
	}
}

// The FCFSRW pass gate holds until admission: a writer at the head keeps
// later readers out even while reads are active.
func TestFCFSRWPassGateExactness(t *testing.T) {
	k := kernel.NewSim()
	db := NewFCFSRW()
	var order []string
	k.Spawn("r1", func(p *kernel.Proc) {
		db.Read(p, func() {
			order = append(order, "r1")
			for i := 0; i < 5; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("w", func(p *kernel.Proc) {
		db.Write(p, func() { order = append(order, "w") })
	})
	k.Spawn("r2", func(p *kernel.Proc) {
		p.Yield()
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[r1 w r2]" {
		t.Fatalf("order = %v", order)
	}
}

// The 1974-dialect bounded buffer visibly leans on auxiliary semaphores;
// the numeric-dialect one does not (E1's structural witness, asserted
// here at the source level).
func TestBoundedBufferDialectsDiffer(t *testing.T) {
	bb := NewBoundedBuffer(2)
	if bb.slots == nil || bb.items == nil {
		t.Fatal("1974 dialect must use auxiliary semaphores")
	}
	ext := NewBoundedBufferNumeric(2)
	paths := ext.Paths()
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	if !strings.Contains(paths[0], "2 :") {
		t.Fatalf("numeric path missing bound: %q", paths[0])
	}
}

// Both dialects move items correctly through a small workload.
func TestBoundedBufferDialectsBothWork(t *testing.T) {
	for name, bb := range map[string]interface {
		Deposit(p *kernel.Proc, item int64, body func())
		Remove(p *kernel.Proc, body func(int64))
	}{
		"1974":    NewBoundedBuffer(2),
		"numeric": NewBoundedBufferNumeric(2),
	} {
		bb := bb
		t.Run(name, func(t *testing.T) {
			k := kernel.NewSim()
			var got []int64
			k.Spawn("producer", func(p *kernel.Proc) {
				for i := int64(1); i <= 5; i++ {
					bb.Deposit(p, i, func() {})
				}
			})
			k.Spawn("consumer", func(p *kernel.Proc) {
				for i := 0; i < 5; i++ {
					bb.Remove(p, func(v int64) { got = append(got, v) })
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != "[1 2 3 4 5]" {
				t.Fatalf("got = %v", got)
			}
		})
	}
}

// The disk solution's lock/unlock path really is a mutex: the alternation
// path serializes the scheduler's bookkeeping sections.
func TestDiskLockPathServes(t *testing.T) {
	k := kernel.NewSim()
	d := NewDisk(50, 200)
	var order []int64
	for _, track := range []int64{55, 10, 60} {
		track := track
		k.Spawn("io", func(p *kernel.Proc) {
			d.Seek(p, track, func() {
				order = append(order, track)
				p.Yield()
				p.Yield()
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[55 60 10]" {
		t.Fatalf("service order = %v", order)
	}
}

func TestAlarmClockProceduralGates(t *testing.T) {
	k := kernel.NewSim()
	ac := NewAlarmClock()
	var woke []int64
	for _, ticks := range []int64{4, 2} {
		ticks := ticks
		k.Spawn("sleeper", func(p *kernel.Proc) {
			ac.WakeMe(p, ticks, func() { woke = append(woke, ticks) })
		})
	}
	k.Spawn("clock", func(p *kernel.Proc) {
		for i := 0; i < 5; i++ {
			p.Yield()
			ac.Tick(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(woke) != "[2 4]" {
		t.Fatalf("wake order = %v", woke)
	}
}
