// Package semscale implements the shared-memory problem suite on the
// scalable semaphore variants (semaphore.Fast, semaphore.Striped) — the
// million-client counterpart to package semsol.
//
// The solution bodies are deliberately line-for-line the semsol ones; only
// the primitive underneath changes. That isolation is the point: any
// behavioral difference the oracles or the load matrix observe between
// "semaphore" and "semaphore-fast"/"semaphore-striped" is attributable to
// the primitive's semantics, not the solution logic. What changes is
// exactly what the complexity-hierarchy literature predicts: the variants
// shed the central hand-off lock (measured by the load matrix) and in
// exchange give up FIFO admission — V publishes a permit instead of
// handing it to the longest waiter, so a late arrival can barge. The FCFS
// problem is therefore *expressible only approximately* on these
// primitives: the FCFSResource below provides exclusion but not
// request-order admission (pinned by TestVariantResourceNotFCFS), the
// Bloom-criteria sacrifice DESIGN.md §8 tabulates.
//
// Solutions that need strict FIFO or per-request hand-off (Disk's elevator
// gates, AlarmClock's wakeup gates, OneSlot's alternation) keep baseline
// private semaphores where hand-off is the specification; the contended
// ingress paths are what the variants replace.
package semscale

import (
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/semaphore"
)

// Sem is the counting-semaphore contract the suite is generic over. Both
// scalable variants and the baseline semaphore.Semaphore satisfy it.
type Sem interface {
	P(p *kernel.Proc)
	V()
}

// Factory names a variant and constructs its semaphores.
type Factory struct {
	// Variant is the registry suffix: "fast" or "striped".
	Variant string
	// New creates a semaphore with the given initial count.
	New func(initial int64) Sem
}

// FastFactory builds every semaphore as a semaphore.Fast.
func FastFactory() Factory {
	return Factory{Variant: "fast", New: func(n int64) Sem { return semaphore.NewFast(n) }}
}

// StripedFactory builds every semaphore as a semaphore.Striped with the
// given shard count (<= 0 selects semaphore.DefaultStripes).
func StripedFactory(shards int) Factory {
	return Factory{Variant: "striped", New: func(n int64) Sem { return semaphore.NewStriped(n, shards) }}
}

// BoundedBuffer is semsol.BoundedBuffer with scalable slot/item counters:
// the two counting semaphores are the contended ingress (every producer
// hits slots, every consumer hits items), the buffer mutex stays FIFO.
type BoundedBuffer struct {
	mutex    *semaphore.Mutex
	slots    Sem
	items    Sem
	buf      []int64
	capacity int
}

// NewBoundedBuffer creates a buffer with the given capacity.
func NewBoundedBuffer(f Factory, capacity int) *BoundedBuffer {
	return &BoundedBuffer{
		mutex:    semaphore.NewMutex(),
		slots:    f.New(int64(capacity)),
		items:    f.New(0),
		capacity: capacity,
	}
}

// Cap implements problems.BoundedBuffer.
func (b *BoundedBuffer) Cap() int { return b.capacity }

// Deposit implements problems.BoundedBuffer.
func (b *BoundedBuffer) Deposit(p *kernel.Proc, item int64, body func()) {
	b.slots.P(p)
	b.mutex.Lock(p)
	body()
	b.buf = append(b.buf, item)
	b.mutex.Unlock(p)
	b.items.V()
}

// Remove implements problems.BoundedBuffer.
func (b *BoundedBuffer) Remove(p *kernel.Proc, body func(int64)) {
	b.items.P(p)
	b.mutex.Lock(p)
	item := b.buf[0]
	b.buf = b.buf[1:]
	body(item)
	b.mutex.Unlock(p)
	b.slots.V()
}

// FCFSResource is the allocator on a barging semaphore: exclusion holds,
// request-order admission does not. Where semsol's FIFO semaphore *is* the
// FCFS solution (request-time information encoded in the queue), the
// scalable variants cannot encode it — this is the suite's measured
// expressive-power loss, not a bug.
type FCFSResource struct {
	s Sem
}

// NewFCFSResource creates the allocator.
func NewFCFSResource(f Factory) *FCFSResource {
	return &FCFSResource{s: f.New(1)}
}

// Use implements problems.Resource.
func (f *FCFSResource) Use(p *kernel.Proc, body func()) {
	f.s.P(p)
	body()
	f.s.V()
}

// ReadersPriority is CHP solution 1 on scalable gates: w carries the
// reader-group/writer exclusion (every reader group and every writer
// contends on it), wq stages writers.
type ReadersPriority struct {
	mutex *semaphore.Mutex // protects rc
	w     Sem              // held by the writer or the reader group
	wq    Sem              // writer staging: one writer at a time
	rc    int
}

// NewReadersPriority creates the database.
func NewReadersPriority(f Factory) *ReadersPriority {
	return &ReadersPriority{
		mutex: semaphore.NewMutex(),
		w:     f.New(1),
		wq:    f.New(1),
	}
}

// Read implements problems.RWStore.
func (d *ReadersPriority) Read(p *kernel.Proc, body func()) {
	d.mutex.Lock(p)
	d.rc++
	if d.rc == 1 {
		//synclint:allow holdwait,lockorder: CHP problem 1 blocks on w under the count mutex; the w/mutex inversion is guarded by rc — only the first reader parks on w, so no w-holder ever waits for mutex
		d.w.P(p) // first reader locks out writers
	}
	d.mutex.Unlock(p)

	body()

	d.mutex.Lock(p)
	d.rc--
	if d.rc == 0 {
		d.w.V() // last reader readmits writers
	}
	d.mutex.Unlock(p)
}

// Write implements problems.RWStore.
func (d *ReadersPriority) Write(p *kernel.Proc, body func()) {
	d.wq.P(p) // stage: only one writer contends on w
	d.w.P(p)
	body()
	d.w.V()
	d.wq.V()
}

// WritersPriority is CHP solution 2 on scalable gates.
type WritersPriority struct {
	mutex1 *semaphore.Mutex // protects rc
	mutex2 *semaphore.Mutex // protects wc
	mutex3 *semaphore.Mutex // at most one reader queued on r
	r      Sem
	w      Sem
	rc, wc int
}

// NewWritersPriority creates the database.
func NewWritersPriority(f Factory) *WritersPriority {
	return &WritersPriority{
		mutex1: semaphore.NewMutex(),
		mutex2: semaphore.NewMutex(),
		mutex3: semaphore.NewMutex(),
		r:      f.New(1),
		w:      f.New(1),
	}
}

// Read implements problems.RWStore.
//
//synclint:allow holdwait: CHP problem 2 as published: readers thread the r/mutex1 gauntlet while mutex3 serializes arrivals
func (d *WritersPriority) Read(p *kernel.Proc, body func()) {
	d.mutex3.Lock(p)
	d.r.P(p)
	d.mutex1.Lock(p)
	d.rc++
	if d.rc == 1 {
		//synclint:allow lockorder: first-reader convention — rc==1 guarantees no reader holds w, so the blocking w-holder is a writer, which never takes mutex1
		d.w.P(p)
	}
	d.mutex1.Unlock(p)
	d.r.V()
	d.mutex3.Unlock(p)

	body()

	d.mutex1.Lock(p)
	d.rc--
	if d.rc == 0 {
		d.w.V()
	}
	d.mutex1.Unlock(p)
}

// Write implements problems.RWStore.
//
//synclint:allow holdwait: CHP problem 2: the first writer bars new readers while holding the writer-count mutex
func (d *WritersPriority) Write(p *kernel.Proc, body func()) {
	d.mutex2.Lock(p)
	d.wc++
	if d.wc == 1 {
		//synclint:allow lockorder: first-writer convention — wc==1 guarantees no writer holds r, so the blocking r-holder is a reader, which never takes mutex2
		d.r.P(p) // first writer bars new readers
	}
	d.mutex2.Unlock(p)
	d.w.P(p)

	body()

	d.w.V()
	d.mutex2.Lock(p)
	d.wc--
	if d.wc == 0 {
		d.r.V()
	}
	d.mutex2.Unlock(p)
}

// FCFSRW threads requests through an entry gate as in semsol — but on a
// barging gate the "FCFS" in the name is approximate in exactly the way
// FCFSResource's is: the entry semaphore bounds overtaking without
// eliminating it. Exclusion and reader overlap are unchanged.
type FCFSRW struct {
	entry Sem
	mutex *semaphore.Mutex
	w     Sem
	rc    int
}

// NewFCFSRW creates the database.
func NewFCFSRW(f Factory) *FCFSRW {
	return &FCFSRW{
		entry: f.New(1),
		mutex: semaphore.NewMutex(),
		w:     f.New(1),
	}
}

// Read implements problems.RWStore.
//
//synclint:allow holdwait: first reader blocks on w inside the entry gate
func (d *FCFSRW) Read(p *kernel.Proc, body func()) {
	d.entry.P(p)
	d.mutex.Lock(p)
	d.rc++
	if d.rc == 1 {
		//synclint:allow lockorder: first-reader convention — rc==1 guarantees no reader holds w, so the blocking w-holder is a writer, which never takes mutex
		d.w.P(p)
	}
	d.mutex.Unlock(p)
	d.entry.V()

	body()

	d.mutex.Lock(p)
	d.rc--
	if d.rc == 0 {
		d.w.V()
	}
	d.mutex.Unlock(p)
}

// Write implements problems.RWStore.
func (d *FCFSRW) Write(p *kernel.Proc, body func()) {
	d.entry.P(p)
	d.w.P(p)
	body()
	d.w.V()
	d.entry.V()
}

// Compile-time checks that every solution satisfies its problem interface.
var (
	_ problems.BoundedBuffer = (*BoundedBuffer)(nil)
	_ problems.Resource      = (*FCFSResource)(nil)
	_ problems.RWStore       = (*ReadersPriority)(nil)
	_ problems.RWStore       = (*WritersPriority)(nil)
	_ problems.RWStore       = (*FCFSRW)(nil)
)
