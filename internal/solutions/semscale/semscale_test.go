package semscale

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/semaphore"
	"repro/internal/solutions/semsol"
)

// TestVariantResourceNotFCFS pins the sacrificed Bloom criterion as a
// deterministic schedule, not a statistical claim. One process holds the
// resource while a second queues; the holder releases and immediately
// re-requests. On the baseline FIFO semaphore the release hands the
// resource to the queued waiter, so the holder's second use runs last. On
// the barging variants the release publishes a permit that the holder's
// own re-request steals before the waiter is rescheduled — admission
// order inverts.
func TestVariantResourceNotFCFS(t *testing.T) {
	order := func(use func(p *kernel.Proc, body func())) string {
		k := kernel.NewSim()
		var got []string
		k.Spawn("holder", func(p *kernel.Proc) {
			use(p, func() {
				got = append(got, "holder")
				p.Yield() // let the waiter queue behind us
			})
			use(p, func() { got = append(got, "holder-again") })
		})
		k.Spawn("waiter", func(p *kernel.Proc) {
			use(p, func() { got = append(got, "waiter") })
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(got)
	}

	base := semsol.NewFCFS()
	if got := order(base.Use); got != "[holder waiter holder-again]" {
		t.Errorf("baseline admission = %v, want FCFS hand-off to the queued waiter", got)
	}
	for _, f := range []Factory{FastFactory(), StripedFactory(4)} {
		r := NewFCFSResource(f)
		if got := order(r.Use); got != "[holder holder-again waiter]" {
			t.Errorf("%s admission = %v, want the re-request to barge past the queued waiter", f.Variant, got)
		}
	}
}

// TestVariantBoundedBufferIntegritySim: items flow FIFO through the buffer
// itself even though admission to slots/items barges — the buffer mutex,
// not the counting semaphores, carries ordering of the data structure.
func TestVariantBoundedBufferIntegritySim(t *testing.T) {
	for _, f := range []Factory{FastFactory(), StripedFactory(0)} {
		t.Run(f.Variant, func(t *testing.T) {
			k := kernel.NewSim()
			b := NewBoundedBuffer(f, 2)
			var got []int64
			k.Spawn("producer", func(p *kernel.Proc) {
				for i := int64(1); i <= 6; i++ {
					b.Deposit(p, i, func() {})
				}
			})
			k.Spawn("consumer", func(p *kernel.Proc) {
				for i := 0; i < 6; i++ {
					b.Remove(p, func(v int64) { got = append(got, v) })
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != "[1 2 3 4 5 6]" {
				t.Fatalf("consumed %v, want FIFO item order", got)
			}
		})
	}
}

// TestFactoriesProduceDistinctPrimitives guards the registry wiring: the
// factories really hand out the scalable types, not the baseline.
func TestFactoriesProduceDistinctPrimitives(t *testing.T) {
	if _, ok := FastFactory().New(1).(*semaphore.Fast); !ok {
		t.Error("FastFactory did not produce *semaphore.Fast")
	}
	s, ok := StripedFactory(8).New(3).(*semaphore.Striped)
	if !ok {
		t.Fatal("StripedFactory did not produce *semaphore.Striped")
	}
	if s.Stripes() != 8 || s.Value() != 3 {
		t.Errorf("striped factory: stripes=%d value=%d, want 8 and 3", s.Stripes(), s.Value())
	}
}
