// Package semsol implements the full problem suite with bare Dijkstra
// semaphores [9] — the baseline the paper's §1 says higher-level
// mechanisms must improve on.
//
// The characteristic pattern the evaluation engine extracts from this
// source: every kind of information is expressible, but none directly —
// counts, tickets, pending lists, and per-process private semaphores are
// all hand-built, and exclusion and priority logic interleave freely.
package semsol

import (
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/semaphore"
)

// BoundedBuffer is Dijkstra's producer–consumer: counting semaphores for
// slots and items, a mutex for the buffer itself.
type BoundedBuffer struct {
	mutex    *semaphore.Mutex
	slots    *semaphore.Semaphore
	items    *semaphore.Semaphore
	buf      []int64
	capacity int
}

// NewBoundedBuffer creates a buffer with the given capacity.
func NewBoundedBuffer(capacity int) *BoundedBuffer {
	return &BoundedBuffer{
		mutex:    semaphore.NewMutex(),
		slots:    semaphore.New(int64(capacity)),
		items:    semaphore.New(0),
		capacity: capacity,
	}
}

// Cap implements problems.BoundedBuffer.
func (b *BoundedBuffer) Cap() int { return b.capacity }

// Deposit implements problems.BoundedBuffer.
func (b *BoundedBuffer) Deposit(p *kernel.Proc, item int64, body func()) {
	b.slots.P(p)
	b.mutex.Lock(p)
	body()
	b.buf = append(b.buf, item)
	b.mutex.Unlock(p)
	b.items.V()
}

// Remove implements problems.BoundedBuffer.
func (b *BoundedBuffer) Remove(p *kernel.Proc, body func(int64)) {
	b.items.P(p)
	b.mutex.Lock(p)
	item := b.buf[0]
	b.buf = b.buf[1:]
	body(item)
	b.mutex.Unlock(p)
	b.slots.V()
}

// FCFS: a single FIFO semaphore IS the first-come-first-served allocator
// — request-time information is exactly what a FIFO queue encodes.
type FCFS struct {
	s *semaphore.Semaphore
}

// NewFCFS creates the allocator.
func NewFCFS() *FCFS {
	return &FCFS{s: semaphore.New(1)}
}

// Use implements problems.Resource.
func (f *FCFS) Use(p *kernel.Proc, body func()) {
	f.s.P(p)
	body()
	f.s.V()
}

// ReadersPriority is the Courtois–Heymans–Parnas semaphore solution 1,
// hardened for FIFO semaphores: writers serialize through wq before
// touching w, so at most one writer ever queues on w and a waiting reader
// can never sit behind a second writer.
type ReadersPriority struct {
	mutex *semaphore.Mutex     // protects rc
	w     *semaphore.Semaphore // held by the writer or the reader group
	wq    *semaphore.Semaphore // writer staging: one writer at a time
	rc    int
}

// NewReadersPriority creates the database.
func NewReadersPriority() *ReadersPriority {
	return &ReadersPriority{
		mutex: semaphore.NewMutex(),
		w:     semaphore.New(1),
		wq:    semaphore.New(1),
	}
}

// Read implements problems.RWStore.
func (d *ReadersPriority) Read(p *kernel.Proc, body func()) {
	d.mutex.Lock(p)
	d.rc++
	if d.rc == 1 {
		//synclint:allow holdwait,lockorder: CHP problem 1 blocks on w under the count mutex; the w/mutex inversion is guarded by rc — only the first reader parks on w, so no w-holder ever waits for mutex
		d.w.P(p) // first reader locks out writers
	}
	d.mutex.Unlock(p)

	body()

	d.mutex.Lock(p)
	d.rc--
	if d.rc == 0 {
		d.w.V() // last reader readmits writers
	}
	d.mutex.Unlock(p)
}

// Write implements problems.RWStore.
func (d *ReadersPriority) Write(p *kernel.Proc, body func()) {
	d.wq.P(p) // stage: only one writer contends on w
	d.w.P(p)
	body()
	d.w.V()
	d.wq.V()
}

// WritersPriority is CHP semaphore solution 2: the r gate holds readers
// out while any writer is waiting or active.
type WritersPriority struct {
	mutex1 *semaphore.Mutex // protects rc
	mutex2 *semaphore.Mutex // protects wc
	mutex3 *semaphore.Mutex // at most one reader queued on r
	r      *semaphore.Semaphore
	w      *semaphore.Semaphore
	rc, wc int
}

// NewWritersPriority creates the database.
func NewWritersPriority() *WritersPriority {
	return &WritersPriority{
		mutex1: semaphore.NewMutex(),
		mutex2: semaphore.NewMutex(),
		mutex3: semaphore.NewMutex(),
		r:      semaphore.New(1),
		w:      semaphore.New(1),
	}
}

// Read implements problems.RWStore.
//
//synclint:allow holdwait: CHP problem 2 as published: readers thread the r/mutex1 gauntlet while mutex3 serializes arrivals
func (d *WritersPriority) Read(p *kernel.Proc, body func()) {
	d.mutex3.Lock(p)
	d.r.P(p)
	d.mutex1.Lock(p)
	d.rc++
	if d.rc == 1 {
		//synclint:allow lockorder: first-reader convention — rc==1 guarantees no reader holds w, so the blocking w-holder is a writer, which never takes mutex1
		d.w.P(p)
	}
	d.mutex1.Unlock(p)
	d.r.V()
	d.mutex3.Unlock(p)

	body()

	d.mutex1.Lock(p)
	d.rc--
	if d.rc == 0 {
		d.w.V()
	}
	d.mutex1.Unlock(p)
}

// Write implements problems.RWStore.
//
//synclint:allow holdwait: CHP problem 2: the first writer bars new readers while holding the writer-count mutex
func (d *WritersPriority) Write(p *kernel.Proc, body func()) {
	d.mutex2.Lock(p)
	d.wc++
	if d.wc == 1 {
		//synclint:allow lockorder: first-writer convention — wc==1 guarantees no writer holds r, so the blocking r-holder is a reader, which never takes mutex2
		d.r.P(p) // first writer bars new readers
	}
	d.mutex2.Unlock(p)
	d.w.P(p)

	body()

	d.w.V()
	d.mutex2.Lock(p)
	d.wc--
	if d.wc == 0 {
		d.r.V()
	}
	d.mutex2.Unlock(p)
}

// FCFSRW threads every request through a FIFO entry semaphore: readers
// release it immediately after registering (so later readers overlap),
// writers hold it for the whole write (so everyone behind waits).
type FCFSRW struct {
	entry *semaphore.Semaphore
	mutex *semaphore.Mutex
	w     *semaphore.Semaphore
	rc    int
}

// NewFCFSRW creates the database.
func NewFCFSRW() *FCFSRW {
	return &FCFSRW{
		entry: semaphore.New(1),
		mutex: semaphore.NewMutex(),
		w:     semaphore.New(1),
	}
}

// Read implements problems.RWStore.
//
//synclint:allow holdwait: first reader blocks on w inside the FCFS entry gate
func (d *FCFSRW) Read(p *kernel.Proc, body func()) {
	d.entry.P(p)
	d.mutex.Lock(p)
	d.rc++
	if d.rc == 1 {
		//synclint:allow lockorder: first-reader convention — rc==1 guarantees no reader holds w, so the blocking w-holder is a writer, which never takes mutex
		d.w.P(p)
	}
	d.mutex.Unlock(p)
	d.entry.V()

	body()

	d.mutex.Lock(p)
	d.rc--
	if d.rc == 0 {
		d.w.V()
	}
	d.mutex.Unlock(p)
}

// Write implements problems.RWStore.
func (d *FCFSRW) Write(p *kernel.Proc, body func()) {
	d.entry.P(p)
	d.w.P(p)
	body()
	d.w.V()
	d.entry.V()
}

// Disk implements the elevator with explicit pending lists and a private
// gate semaphore per waiting request — the "everything by hand" end of
// the spectrum.
type Disk struct {
	mutex   *semaphore.Mutex
	pending []*diskReq
	headpos int64
	up      bool
	busy    bool
}

type diskReq struct {
	track int64
	gate  *semaphore.Semaphore
}

// NewDisk creates the scheduler with the head parked at start.
func NewDisk(start, maxTrack int64) *Disk {
	return &Disk{mutex: semaphore.NewMutex(), headpos: start, up: true}
}

// Seek implements problems.Disk.
func (d *Disk) Seek(p *kernel.Proc, track int64, body func()) {
	d.mutex.Lock(p)
	if !d.busy {
		d.busy = true
		d.moveTo(track)
		d.mutex.Unlock(p)
	} else {
		req := &diskReq{track: track, gate: semaphore.New(0)}
		d.pending = append(d.pending, req)
		d.mutex.Unlock(p)
		req.gate.P(p) // admitted by a completing request
	}

	body()

	d.mutex.Lock(p)
	if next := d.pickNext(); next != nil {
		d.moveTo(next.track)
		d.mutex.Unlock(p)
		next.gate.V()
	} else {
		d.busy = false
		d.mutex.Unlock(p)
	}
}

func (d *Disk) moveTo(track int64) {
	if track > d.headpos {
		d.up = true
	} else if track < d.headpos {
		d.up = false
	}
	d.headpos = track
}

// pickNext removes and returns the elevator-correct next request.
func (d *Disk) pickNext() *diskReq {
	if len(d.pending) == 0 {
		return nil
	}
	bestFwd, bestRev := -1, -1
	for i, r := range d.pending {
		if d.up {
			if r.track >= d.headpos && (bestFwd < 0 || r.track < d.pending[bestFwd].track) {
				bestFwd = i
			}
			if r.track < d.headpos && (bestRev < 0 || r.track > d.pending[bestRev].track) {
				bestRev = i
			}
		} else {
			if r.track <= d.headpos && (bestFwd < 0 || r.track > d.pending[bestFwd].track) {
				bestFwd = i
			}
			if r.track > d.headpos && (bestRev < 0 || r.track < d.pending[bestRev].track) {
				bestRev = i
			}
		}
	}
	idx := bestFwd
	if idx < 0 {
		idx = bestRev
	}
	req := d.pending[idx]
	d.pending = append(d.pending[:idx], d.pending[idx+1:]...)
	return req
}

// AlarmClock keeps a pending list of (due, gate) pairs; each tick opens
// the gates of every due sleeper.
type AlarmClock struct {
	mutex   *semaphore.Mutex
	now     int64
	pending []*alarmReq
}

type alarmReq struct {
	due  int64
	gate *semaphore.Semaphore
}

// NewAlarmClock creates the clock at time zero.
func NewAlarmClock() *AlarmClock {
	return &AlarmClock{mutex: semaphore.NewMutex()}
}

// WakeMe implements problems.AlarmClock.
func (a *AlarmClock) WakeMe(p *kernel.Proc, ticks int64, body func()) {
	a.mutex.Lock(p)
	due := a.now + ticks
	if due <= a.now {
		a.mutex.Unlock(p)
		body()
		return
	}
	req := &alarmReq{due: due, gate: semaphore.New(0)}
	a.pending = append(a.pending, req)
	a.mutex.Unlock(p)
	req.gate.P(p)
	body()
}

// Tick implements problems.AlarmClock.
func (a *AlarmClock) Tick(p *kernel.Proc) {
	a.mutex.Lock(p)
	a.now++
	var due []*alarmReq
	rest := a.pending[:0]
	for _, r := range a.pending {
		if r.due <= a.now {
			due = append(due, r)
		} else {
			rest = append(rest, r)
		}
	}
	a.pending = rest
	a.mutex.Unlock(p)
	for _, r := range due {
		r.gate.V()
	}
}

// OneSlot is the two-semaphore alternation: the history fact "a put has
// completed" is the token in the full semaphore.
type OneSlot struct {
	empty *semaphore.Semaphore
	full  *semaphore.Semaphore
	slot  int64
}

// NewOneSlot creates an empty slot.
func NewOneSlot() *OneSlot {
	return &OneSlot{empty: semaphore.New(1), full: semaphore.New(0)}
}

// Put implements problems.OneSlot.
func (s *OneSlot) Put(p *kernel.Proc, item int64, body func()) {
	s.empty.P(p)
	body()
	s.slot = item
	s.full.V()
}

// Get implements problems.OneSlot.
func (s *OneSlot) Get(p *kernel.Proc, body func(int64)) {
	s.full.P(p)
	body(s.slot)
	s.empty.V()
}

// Compile-time checks that every solution satisfies its problem interface.
var (
	_ problems.BoundedBuffer = (*BoundedBuffer)(nil)
	_ problems.Resource      = (*FCFS)(nil)
	_ problems.RWStore       = (*ReadersPriority)(nil)
	_ problems.RWStore       = (*WritersPriority)(nil)
	_ problems.RWStore       = (*FCFSRW)(nil)
	_ problems.Disk          = (*Disk)(nil)
	_ problems.AlarmClock    = (*AlarmClock)(nil)
	_ problems.OneSlot       = (*OneSlot)(nil)
)
