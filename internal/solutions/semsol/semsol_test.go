package semsol

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kernel"
)

// These tests pin the semaphore baseline's hand-built machinery: the
// writer staging semaphore that hardens CHP solution 1, the CHP solution
// 2 gate structure, and the FIFO entry semaphore of the FCFS variant.

// The wq staging semaphore: with a writer active and another waiting at
// wq, an arriving reader queues on w AHEAD of the second writer and is
// served first — the property plain CHP solution 1 lacks under FIFO
// semaphores.
func TestReadersPriorityStagingBeatsSecondWriter(t *testing.T) {
	k := kernel.NewSim()
	db := NewReadersPriority()
	var order []string
	k.Spawn("w1", func(p *kernel.Proc) {
		db.Write(p, func() {
			order = append(order, "w1")
			for i := 0; i < 6; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("w2", func(p *kernel.Proc) {
		p.Yield()
		db.Write(p, func() { order = append(order, "w2") })
	})
	k.Spawn("r", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		db.Read(p, func() { order = append(order, "r") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// w2 requested BEFORE r, but readers-priority admits r first.
	if fmt.Sprint(order) != "[w1 r w2]" {
		t.Fatalf("order = %v", order)
	}
}

// CHP solution 2's r gate: once a writer is waiting, arriving readers
// block at r until all writers drain.
func TestWritersPriorityRGate(t *testing.T) {
	k := kernel.NewSim()
	db := NewWritersPriority()
	var order []string
	k.Spawn("r1", func(p *kernel.Proc) {
		db.Read(p, func() {
			order = append(order, "r1")
			for i := 0; i < 8; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("w1", func(p *kernel.Proc) {
		p.Yield()
		db.Write(p, func() { order = append(order, "w1") })
	})
	k.Spawn("w2", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		db.Write(p, func() { order = append(order, "w2") })
	})
	k.Spawn("r2", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		p.Yield()
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Both writers precede the second reader.
	if fmt.Sprint(order) != "[r1 w1 w2 r2]" {
		t.Fatalf("order = %v", order)
	}
}

// The FCFSRW entry semaphore: the writer holds it through the write, so
// later arrivals (of either kind) stay strictly behind.
func TestFCFSRWEntryHeldThroughWrite(t *testing.T) {
	k := kernel.NewSim()
	db := NewFCFSRW()
	var order []string
	k.Spawn("w", func(p *kernel.Proc) {
		db.Write(p, func() {
			order = append(order, "w")
			for i := 0; i < 4; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("r1", func(p *kernel.Proc) {
		p.Yield()
		db.Read(p, func() { order = append(order, "r1") })
	})
	k.Spawn("r2", func(p *kernel.Proc) {
		p.Yield()
		p.Yield()
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "w" {
		t.Fatalf("order = %v", order)
	}
}

// Readers release the entry semaphore immediately, so consecutive reads
// overlap.
func TestFCFSRWConsecutiveReadsOverlap(t *testing.T) {
	k := kernel.NewSim()
	db := NewFCFSRW()
	concurrent, maxConcurrent := 0, 0
	for i := 0; i < 3; i++ {
		k.Spawn("reader", func(p *kernel.Proc) {
			db.Read(p, func() {
				concurrent++
				if concurrent > maxConcurrent {
					maxConcurrent = concurrent
				}
				p.Yield()
				p.Yield()
				concurrent--
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConcurrent < 2 {
		t.Fatalf("maxConcurrent = %d", maxConcurrent)
	}
}

// The disk's private gate semaphores hand the head directly to the
// elevator-chosen request.
func TestDiskPrivateGates(t *testing.T) {
	k := kernel.NewSim()
	d := NewDisk(50, 200)
	var order []int64
	for _, track := range []int64{55, 10, 60, 90, 20} {
		track := track
		k.Spawn("io", func(p *kernel.Proc) {
			d.Seek(p, track, func() {
				order = append(order, track)
				p.Yield()
				p.Yield()
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[55 60 90 20 10]" {
		t.Fatalf("service order = %v", order)
	}
}

// The alarm clock opens every due gate on a tick, including several at
// once.
func TestAlarmClockOpensAllDueGates(t *testing.T) {
	k := kernel.NewSim()
	ac := NewAlarmClock()
	woke := 0
	for i := 0; i < 3; i++ {
		k.Spawn("sleeper", func(p *kernel.Proc) {
			ac.WakeMe(p, 2, func() { woke++ })
		})
	}
	k.Spawn("clock", func(p *kernel.Proc) {
		p.Yield()
		ac.Tick(p)
		ac.Tick(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke = %d", woke)
	}
}

// The two-semaphore one-slot buffer under the real kernel and -race.
func TestOneSlotReal(t *testing.T) {
	k := kernel.NewReal(kernel.WithWatchdog(30 * time.Second))
	s := NewOneSlot()
	const items = 500
	var got []int64
	k.Spawn("producer", func(p *kernel.Proc) {
		for i := int64(0); i < items; i++ {
			s.Put(p, i, func() {})
		}
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < items; i++ {
			s.Get(p, func(v int64) { got = append(got, v) })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("item %d = %d", i, v)
		}
	}
}

// Dijkstra's bounded buffer keeps FIFO item order with one producer and
// one consumer.
func TestBoundedBufferFIFO(t *testing.T) {
	k := kernel.NewSim()
	bb := NewBoundedBuffer(3)
	var got []int64
	k.Spawn("producer", func(p *kernel.Proc) {
		for i := int64(0); i < 10; i++ {
			bb.Deposit(p, i, func() {})
		}
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < 10; i++ {
			bb.Remove(p, func(v int64) { got = append(got, v) })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3 4 5 6 7 8 9]" {
		t.Fatalf("got = %v", got)
	}
}
