// Package serializersol implements the full problem suite with
// Atkinson–Hewitt serializers [3].
//
// The §5.2 findings are visible in this source: crowds carry
// synchronization state without hand-kept counts, a single queue carries
// FCFS order while guarantees distinguish request types (dissolving the
// monitor queue conflict), and resource bodies run outside possession
// (Join), giving the modular protected-resource structure automatically.
package serializersol

import (
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/serializer"
)

// BoundedBuffer guards deposits and removals with guarantees over the
// solution's local state; operations execute inside possession (the
// buffer spec serializes them).
type BoundedBuffer struct {
	s        *serializer.Serializer
	qput     *serializer.Queue
	qget     *serializer.Queue
	buf      []int64
	capacity int
}

// NewBoundedBuffer creates a buffer with the given capacity.
func NewBoundedBuffer(capacity int) *BoundedBuffer {
	s := serializer.New("bounded-buffer")
	return &BoundedBuffer{
		s:        s,
		qput:     s.NewQueue("put"),
		qget:     s.NewQueue("get"),
		capacity: capacity,
	}
}

// Cap implements problems.BoundedBuffer.
func (b *BoundedBuffer) Cap() int { return b.capacity }

// Deposit implements problems.BoundedBuffer.
func (b *BoundedBuffer) Deposit(p *kernel.Proc, item int64, body func()) {
	b.s.Enter(p)
	b.qput.Enqueue(p, func() bool { return len(b.buf) < b.capacity })
	body()
	b.buf = append(b.buf, item)
	b.s.Exit(p)
}

// Remove implements problems.BoundedBuffer.
func (b *BoundedBuffer) Remove(p *kernel.Proc, body func(int64)) {
	b.s.Enter(p)
	b.qget.Enqueue(p, func() bool { return len(b.buf) > 0 })
	item := b.buf[0]
	b.buf = b.buf[1:]
	body(item)
	b.s.Exit(p)
}

// FCFS: one queue, one crowd — head-blocking FIFO is exact
// first-come-first-served.
type FCFS struct {
	s     *serializer.Serializer
	q     *serializer.Queue
	users *serializer.Crowd
}

// NewFCFS creates the allocator.
func NewFCFS() *FCFS {
	s := serializer.New("fcfs")
	return &FCFS{s: s, q: s.NewQueue("q"), users: s.NewCrowd("users")}
}

// Use implements problems.Resource.
func (f *FCFS) Use(p *kernel.Proc, body func()) {
	f.s.Enter(p)
	f.q.Enqueue(p, f.users.EmptyG())
	f.users.Join(p, body)
	f.s.Exit(p)
}

// ReadersPriority: readers wait only for active writers (writers crowd
// nonempty); a writer additionally waits while any reader is waiting —
// the queue-length guarantee expresses the priority constraint directly.
type ReadersPriority struct {
	s       *serializer.Serializer
	rq      *serializer.Queue
	wq      *serializer.Queue
	readers *serializer.Crowd
	writers *serializer.Crowd
}

// NewReadersPriority creates the database.
func NewReadersPriority() *ReadersPriority {
	s := serializer.New("readers-priority")
	return &ReadersPriority{
		s:       s,
		rq:      s.NewQueue("rq"),
		wq:      s.NewQueue("wq"),
		readers: s.NewCrowd("readers"),
		writers: s.NewCrowd("writers"),
	}
}

// Read implements problems.RWStore.
func (d *ReadersPriority) Read(p *kernel.Proc, body func()) {
	d.s.Enter(p)
	d.rq.Enqueue(p, d.writers.EmptyG())
	d.readers.Join(p, body)
	d.s.Exit(p)
}

// Write implements problems.RWStore.
func (d *ReadersPriority) Write(p *kernel.Proc, body func()) {
	d.s.Enter(p)
	rSize, wSize, rWaiting := d.readers.SizeG(), d.writers.SizeG(), d.rq.LenG()
	d.wq.Enqueue(p, func() bool {
		return rSize() == 0 && wSize() == 0 && rWaiting() == 0
	})
	d.writers.Join(p, body)
	d.s.Exit(p)
}

// WritersPriority is the mirror image: the guards swap roles, nothing
// else changes — the serializer's constraint-independence showcase.
type WritersPriority struct {
	s       *serializer.Serializer
	rq      *serializer.Queue
	wq      *serializer.Queue
	readers *serializer.Crowd
	writers *serializer.Crowd
}

// NewWritersPriority creates the database.
func NewWritersPriority() *WritersPriority {
	s := serializer.New("writers-priority")
	return &WritersPriority{
		s:       s,
		rq:      s.NewQueue("rq"),
		wq:      s.NewQueue("wq"),
		readers: s.NewCrowd("readers"),
		writers: s.NewCrowd("writers"),
	}
}

// Read implements problems.RWStore.
func (d *WritersPriority) Read(p *kernel.Proc, body func()) {
	d.s.Enter(p)
	wSize, wWaiting := d.writers.SizeG(), d.wq.LenG()
	d.rq.Enqueue(p, func() bool {
		return wSize() == 0 && wWaiting() == 0
	})
	d.readers.Join(p, body)
	d.s.Exit(p)
}

// Write implements problems.RWStore.
func (d *WritersPriority) Write(p *kernel.Proc, body func()) {
	d.s.Enter(p)
	rSize, wSize := d.readers.SizeG(), d.writers.SizeG()
	d.wq.Enqueue(p, func() bool { return rSize() == 0 && wSize() == 0 })
	d.writers.Join(p, body)
	d.s.Exit(p)
}

// FCFSRW is the serializer's signature solution (§5.2): readers and
// writers share ONE queue — arrival order is the queue order, request
// type lives in each waiter's guarantee — and the head-blocking rule
// makes the FCFS admission exact.
type FCFSRW struct {
	s       *serializer.Serializer
	q       *serializer.Queue
	readers *serializer.Crowd
	writers *serializer.Crowd
}

// NewFCFSRW creates the database.
func NewFCFSRW() *FCFSRW {
	s := serializer.New("fcfs-rw")
	return &FCFSRW{
		s:       s,
		q:       s.NewQueue("q"),
		readers: s.NewCrowd("readers"),
		writers: s.NewCrowd("writers"),
	}
}

// Read implements problems.RWStore.
func (d *FCFSRW) Read(p *kernel.Proc, body func()) {
	d.s.Enter(p)
	d.q.Enqueue(p, d.writers.EmptyG())
	d.readers.Join(p, body)
	d.s.Exit(p)
}

// Write implements problems.RWStore.
func (d *FCFSRW) Write(p *kernel.Proc, body func()) {
	d.s.Enter(p)
	rSize, wSize := d.readers.SizeG(), d.writers.SizeG()
	d.q.Enqueue(p, func() bool { return rSize() == 0 && wSize() == 0 })
	d.writers.Join(p, body)
	d.s.Exit(p)
}

// Disk implements the elevator with two priority queues (ranked by track
// going up, by reflected track going down) and guard-carried direction
// logic.
type Disk struct {
	s        *serializer.Serializer
	upq      *serializer.Queue
	downq    *serializer.Queue
	transfer *serializer.Crowd
	headpos  int64
	up       bool
	maxTrack int64
}

// NewDisk creates the scheduler with the head parked at start.
func NewDisk(start, maxTrack int64) *Disk {
	s := serializer.New("disk")
	return &Disk{
		s:        s,
		upq:      s.NewQueue("upsweep"),
		downq:    s.NewQueue("downsweep"),
		transfer: s.NewCrowd("transfer"),
		headpos:  start,
		up:       true,
		maxTrack: maxTrack,
	}
}

// Seek implements problems.Disk.
func (d *Disk) Seek(p *kernel.Proc, track int64, body func()) {
	d.s.Enter(p)
	idle := d.transfer.SizeG()
	upLen, downLen := d.upq.LenG(), d.downq.LenG()
	goingUp := track > d.headpos || (track == d.headpos && d.up)
	if goingUp {
		d.upq.EnqueueRank(p, track, func() bool {
			return idle() == 0 && (d.up || downLen() == 0)
		})
		d.up = true
	} else {
		d.downq.EnqueueRank(p, d.maxTrack-track, func() bool {
			return idle() == 0 && (!d.up || upLen() == 0)
		})
		d.up = false
	}
	d.headpos = track
	d.transfer.Join(p, body)
	d.s.Exit(p)
}

// AlarmClock: one priority queue ranked by due time; Tick's possession
// release is the automatic signal.
type AlarmClock struct {
	s      *serializer.Serializer
	wakeup *serializer.Queue
	now    int64
}

// NewAlarmClock creates the clock at time zero.
func NewAlarmClock() *AlarmClock {
	s := serializer.New("alarm-clock")
	return &AlarmClock{s: s, wakeup: s.NewQueue("wakeup")}
}

// WakeMe implements problems.AlarmClock.
func (a *AlarmClock) WakeMe(p *kernel.Proc, ticks int64, body func()) {
	a.s.Enter(p)
	due := a.now + ticks
	a.wakeup.EnqueueRank(p, due, func() bool { return a.now >= due })
	body()
	a.s.Exit(p)
}

// Tick implements problems.AlarmClock.
func (a *AlarmClock) Tick(p *kernel.Proc) {
	a.s.Enter(p)
	a.now++
	a.s.Exit(p)
}

// OneSlot: alternation via two guarded queues over the history flag.
type OneSlot struct {
	s    *serializer.Serializer
	qput *serializer.Queue
	qget *serializer.Queue
	slot int64
	full bool
}

// NewOneSlot creates an empty slot.
func NewOneSlot() *OneSlot {
	s := serializer.New("one-slot")
	return &OneSlot{s: s, qput: s.NewQueue("put"), qget: s.NewQueue("get")}
}

// Put implements problems.OneSlot.
func (s *OneSlot) Put(p *kernel.Proc, item int64, body func()) {
	s.s.Enter(p)
	s.qput.Enqueue(p, func() bool { return !s.full })
	body()
	s.slot = item
	s.full = true
	s.s.Exit(p)
}

// Get implements problems.OneSlot.
func (s *OneSlot) Get(p *kernel.Proc, body func(int64)) {
	s.s.Enter(p)
	s.qget.Enqueue(p, func() bool { return s.full })
	body(s.slot)
	s.full = false
	s.s.Exit(p)
}

// Compile-time checks that every solution satisfies its problem interface.
var (
	_ problems.BoundedBuffer = (*BoundedBuffer)(nil)
	_ problems.Resource      = (*FCFS)(nil)
	_ problems.RWStore       = (*ReadersPriority)(nil)
	_ problems.RWStore       = (*WritersPriority)(nil)
	_ problems.RWStore       = (*FCFSRW)(nil)
	_ problems.Disk          = (*Disk)(nil)
	_ problems.AlarmClock    = (*AlarmClock)(nil)
	_ problems.OneSlot       = (*OneSlot)(nil)
)
