package serializersol

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/trace"
)

// These tests pin serializer-specific behaviors: head-of-line blocking,
// single-queue FCFS exactness, crowd-based priority, and the priority
// queues behind the elevator and the clock.

// The single-queue FCFSRW: a writer at the head blocks later readers even
// while reads are active (exact FCFS, §5.2).
func TestFCFSRWHeadOfLineWriterBlocksLaterReaders(t *testing.T) {
	k := kernel.NewSim()
	db := NewFCFSRW()
	var order []string
	k.Spawn("r1", func(p *kernel.Proc) {
		db.Read(p, func() {
			order = append(order, "r1")
			for i := 0; i < 5; i++ {
				p.Yield() // the writer and r2 arrive while r1 reads
			}
		})
	})
	k.Spawn("w", func(p *kernel.Proc) {
		db.Write(p, func() { order = append(order, "w") })
	})
	k.Spawn("r2", func(p *kernel.Proc) {
		p.Yield()
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// r2 requested after w; even though r1 is reading (and r2 could
	// share), exact FCFS holds r2 behind the writer.
	if fmt.Sprint(order) != "[r1 w r2]" {
		t.Fatalf("order = %v", order)
	}
}

// Readers-priority: a reader arriving while a writer WAITS is admitted
// ahead of it (readers only wait for active writers).
func TestReadersPriorityReaderPassesWaitingWriter(t *testing.T) {
	k := kernel.NewSim()
	db := NewReadersPriority()
	var order []string
	k.Spawn("r1", func(p *kernel.Proc) {
		db.Read(p, func() {
			order = append(order, "r1")
			for i := 0; i < 5; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("w", func(p *kernel.Proc) {
		db.Write(p, func() { order = append(order, "w") })
	})
	k.Spawn("r2", func(p *kernel.Proc) {
		p.Yield()
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[r1 r2 w]" {
		t.Fatalf("order = %v: r2 must pass the waiting writer", order)
	}
}

// WritersPriority is the mirror: r2 must NOT pass the waiting writer.
func TestWritersPriorityReaderBlocksBehindWaitingWriter(t *testing.T) {
	k := kernel.NewSim()
	db := NewWritersPriority()
	var order []string
	k.Spawn("r1", func(p *kernel.Proc) {
		db.Read(p, func() {
			order = append(order, "r1")
			for i := 0; i < 5; i++ {
				p.Yield()
			}
		})
	})
	k.Spawn("w", func(p *kernel.Proc) {
		db.Write(p, func() { order = append(order, "w") })
	})
	k.Spawn("r2", func(p *kernel.Proc) {
		p.Yield()
		db.Read(p, func() { order = append(order, "r2") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[r1 w r2]" {
		t.Fatalf("order = %v", order)
	}
}

// The elevator's two priority queues: a pre-loaded batch is served in
// SCAN order, including the direction flip.
func TestDiskPriorityQueuesScanOrder(t *testing.T) {
	k := kernel.NewSim()
	d := NewDisk(100, 300)
	r := trace.NewRecorder(k)
	cfg := problems.DiskConfig{
		Requests: []problems.DiskRequest{
			{Track: 150}, {Track: 40}, {Track: 110}, {Track: 250}, {Track: 70},
		},
		WorkYields: 3,
	}
	if err := problems.DriveDisk(k, d, r, cfg); err != nil {
		t.Fatal(err)
	}
	var order []int64
	for _, iv := range r.Events().MustIntervals() {
		order = append(order, iv.Arg)
	}
	// The idle disk serves the first arrival (150) at once; the rest
	// queue while it transfers, and SCAN continues up from 150 (250),
	// then sweeps down (110, 70, 40).
	if fmt.Sprint(order) != "[150 250 110 70 40]" {
		t.Fatalf("service order = %v", order)
	}
}

// The alarm clock's rank queue: sleepers wake in due order regardless of
// registration order, purely from possession releases at ticks.
func TestAlarmClockRankQueueDueOrder(t *testing.T) {
	k := kernel.NewSim()
	ac := NewAlarmClock()
	var woke []int64
	for _, ticks := range []int64{9, 3, 6} {
		k.Spawn("sleeper", func(p *kernel.Proc) {
			ac.WakeMe(p, ticks, func() { woke = append(woke, ticks) })
		})
	}
	k.Spawn("clock", func(p *kernel.Proc) {
		for i := 0; i < 10; i++ {
			p.Yield()
			ac.Tick(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(woke) != "[3 6 9]" {
		t.Fatalf("wake order = %v", woke)
	}
}

// Bounded buffer: guarantees over solution-local state; a full buffer
// blocks the producer until a removal.
func TestBoundedBufferGuaranteeBlocksAtCapacity(t *testing.T) {
	k := kernel.NewSim()
	bb := NewBoundedBuffer(2)
	var order []string
	k.Spawn("producer", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			bb.Deposit(p, int64(i), func() { order = append(order, fmt.Sprintf("d%d", i)) })
		}
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		p.Yield()
		bb.Remove(p, func(v int64) { order = append(order, fmt.Sprintf("g%d", v)) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// d0 d1 fill the buffer; d2 must wait for g0.
	if fmt.Sprint(order) != "[d0 d1 g0 d2]" {
		t.Fatalf("order = %v", order)
	}
}

// FCFS: the crowd guarantee serializes users in queue order.
func TestFCFSQueueOrder(t *testing.T) {
	k := kernel.NewSim()
	f := NewFCFS()
	var order []int
	for i := 0; i < 4; i++ {
		k.Spawn("user", func(p *kernel.Proc) {
			f.Use(p, func() {
				order = append(order, p.ID())
				p.Yield()
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3 4]" {
		t.Fatalf("order = %v", order)
	}
}

// OneSlot: put/get alternate via the two guarded queues.
func TestOneSlotAlternation(t *testing.T) {
	k := kernel.NewSim()
	s := NewOneSlot()
	var order []string
	k.Spawn("producer", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			s.Put(p, int64(i), func() { order = append(order, "p") })
		}
	})
	k.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			s.Get(p, func(int64) { order = append(order, "g") })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[p g p g p g]" {
		t.Fatalf("order = %v", order)
	}
}
