// Package solutions registers every (mechanism, problem) solution pair
// and provides the standard workloads that drive them.
//
// The registry is the evaluation engine's raw material: RunStandard
// executes a solution under a kernel and judges its trace with the
// problem's oracle, and Sources embeds each solution package's text for
// the structural (constraint-independence) analysis.
package solutions

import (
	"embed"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions/ccrsol"
	"repro/internal/solutions/cspsol"
	"repro/internal/solutions/monitorsol"
	"repro/internal/solutions/pathexprsol"
	"repro/internal/solutions/semscale"
	"repro/internal/solutions/semsol"
	"repro/internal/solutions/serializersol"
	"repro/internal/trace"
)

// Sources embeds the text of every solution package, for decl-level
// structural analysis (package eval).
//
//go:embed ccrsol/*.go cspsol/*.go monitorsol/*.go pathexprsol/*.go semsol/*.go serializersol/*.go
var Sources embed.FS

// Suite is one mechanism's complete set of problem solutions. Factories
// take the kernel because message-passing solutions spawn server daemons;
// shared-memory solutions ignore it.
type Suite struct {
	Mechanism string // key into core.Mechanisms

	NewBoundedBuffer   func(k kernel.Kernel, capacity int) problems.BoundedBuffer
	NewFCFS            func(k kernel.Kernel) problems.Resource
	NewReadersPriority func(k kernel.Kernel) problems.RWStore
	NewWritersPriority func(k kernel.Kernel) problems.RWStore
	NewFCFSRW          func(k kernel.Kernel) problems.RWStore
	NewDisk            func(k kernel.Kernel, start, maxTrack int64) problems.Disk
	NewAlarmClock      func(k kernel.Kernel) problems.AlarmClock
	NewOneSlot         func(k kernel.Kernel) problems.OneSlot
}

// All returns the six mechanism suites in historical order.
func All() []Suite {
	return []Suite{
		{
			Mechanism: "semaphore",
			NewBoundedBuffer: func(k kernel.Kernel, c int) problems.BoundedBuffer {
				return semsol.NewBoundedBuffer(c)
			},
			NewFCFS: func(k kernel.Kernel) problems.Resource { return semsol.NewFCFS() },
			NewReadersPriority: func(k kernel.Kernel) problems.RWStore {
				return semsol.NewReadersPriority()
			},
			NewWritersPriority: func(k kernel.Kernel) problems.RWStore {
				return semsol.NewWritersPriority()
			},
			NewFCFSRW: func(k kernel.Kernel) problems.RWStore { return semsol.NewFCFSRW() },
			NewDisk: func(k kernel.Kernel, start, max int64) problems.Disk {
				return semsol.NewDisk(start, max)
			},
			NewAlarmClock: func(k kernel.Kernel) problems.AlarmClock { return semsol.NewAlarmClock() },
			NewOneSlot:    func(k kernel.Kernel) problems.OneSlot { return semsol.NewOneSlot() },
		},
		{
			Mechanism: "ccr",
			NewBoundedBuffer: func(k kernel.Kernel, c int) problems.BoundedBuffer {
				return ccrsol.NewBoundedBuffer(c)
			},
			NewFCFS: func(k kernel.Kernel) problems.Resource { return ccrsol.NewFCFS() },
			NewReadersPriority: func(k kernel.Kernel) problems.RWStore {
				return ccrsol.NewReadersPriority()
			},
			NewWritersPriority: func(k kernel.Kernel) problems.RWStore {
				return ccrsol.NewWritersPriority()
			},
			NewFCFSRW: func(k kernel.Kernel) problems.RWStore { return ccrsol.NewFCFSRW() },
			NewDisk: func(k kernel.Kernel, start, max int64) problems.Disk {
				return ccrsol.NewDisk(start, max)
			},
			NewAlarmClock: func(k kernel.Kernel) problems.AlarmClock { return ccrsol.NewAlarmClock() },
			NewOneSlot:    func(k kernel.Kernel) problems.OneSlot { return ccrsol.NewOneSlot() },
		},
		{
			Mechanism: "pathexpr",
			NewBoundedBuffer: func(k kernel.Kernel, c int) problems.BoundedBuffer {
				return pathexprsol.NewBoundedBuffer(c)
			},
			NewFCFS: func(k kernel.Kernel) problems.Resource { return pathexprsol.NewFCFS() },
			NewReadersPriority: func(k kernel.Kernel) problems.RWStore {
				return pathexprsol.NewReadersPriority()
			},
			NewWritersPriority: func(k kernel.Kernel) problems.RWStore {
				return pathexprsol.NewWritersPriority()
			},
			NewFCFSRW: func(k kernel.Kernel) problems.RWStore { return pathexprsol.NewFCFSRW() },
			NewDisk: func(k kernel.Kernel, start, max int64) problems.Disk {
				return pathexprsol.NewDisk(start, max)
			},
			NewAlarmClock: func(k kernel.Kernel) problems.AlarmClock { return pathexprsol.NewAlarmClock() },
			NewOneSlot:    func(k kernel.Kernel) problems.OneSlot { return pathexprsol.NewOneSlot() },
		},
		{
			Mechanism: "monitor",
			NewBoundedBuffer: func(k kernel.Kernel, c int) problems.BoundedBuffer {
				return monitorsol.NewBoundedBuffer(c)
			},
			NewFCFS: func(k kernel.Kernel) problems.Resource { return monitorsol.NewFCFS() },
			NewReadersPriority: func(k kernel.Kernel) problems.RWStore {
				return monitorsol.NewReadersPriority()
			},
			NewWritersPriority: func(k kernel.Kernel) problems.RWStore {
				return monitorsol.NewWritersPriority()
			},
			NewFCFSRW: func(k kernel.Kernel) problems.RWStore { return monitorsol.NewFCFSRW() },
			NewDisk: func(k kernel.Kernel, start, max int64) problems.Disk {
				return monitorsol.NewDisk(start, max)
			},
			NewAlarmClock: func(k kernel.Kernel) problems.AlarmClock { return monitorsol.NewAlarmClock() },
			NewOneSlot:    func(k kernel.Kernel) problems.OneSlot { return monitorsol.NewOneSlot() },
		},
		{
			Mechanism: "serializer",
			NewBoundedBuffer: func(k kernel.Kernel, c int) problems.BoundedBuffer {
				return serializersol.NewBoundedBuffer(c)
			},
			NewFCFS: func(k kernel.Kernel) problems.Resource { return serializersol.NewFCFS() },
			NewReadersPriority: func(k kernel.Kernel) problems.RWStore {
				return serializersol.NewReadersPriority()
			},
			NewWritersPriority: func(k kernel.Kernel) problems.RWStore {
				return serializersol.NewWritersPriority()
			},
			NewFCFSRW: func(k kernel.Kernel) problems.RWStore { return serializersol.NewFCFSRW() },
			NewDisk: func(k kernel.Kernel, start, max int64) problems.Disk {
				return serializersol.NewDisk(start, max)
			},
			NewAlarmClock: func(k kernel.Kernel) problems.AlarmClock {
				return serializersol.NewAlarmClock()
			},
			NewOneSlot: func(k kernel.Kernel) problems.OneSlot { return serializersol.NewOneSlot() },
		},
		{
			Mechanism: "csp",
			NewBoundedBuffer: func(k kernel.Kernel, c int) problems.BoundedBuffer {
				return cspsol.NewBoundedBuffer(k, c)
			},
			NewFCFS: func(k kernel.Kernel) problems.Resource { return cspsol.NewFCFS(k) },
			NewReadersPriority: func(k kernel.Kernel) problems.RWStore {
				return cspsol.NewReadersPriority(k)
			},
			NewWritersPriority: func(k kernel.Kernel) problems.RWStore {
				return cspsol.NewWritersPriority(k)
			},
			NewFCFSRW: func(k kernel.Kernel) problems.RWStore { return cspsol.NewFCFSRW(k) },
			NewDisk: func(k kernel.Kernel, start, max int64) problems.Disk {
				return cspsol.NewDisk(k, start, max)
			},
			NewAlarmClock: func(k kernel.Kernel) problems.AlarmClock { return cspsol.NewAlarmClock(k) },
			NewOneSlot:    func(k kernel.Kernel) problems.OneSlot { return cspsol.NewOneSlot(k) },
		},
	}
}

// Variants returns the scalable-primitive variant suites (package
// semscale): the semsol solutions rebuilt on fetch-and-add and striped
// semaphores. They are intentionally NOT part of All() — the paper's
// T1–T6 tables and the conformance matrix evaluate the six historical
// mechanisms — but ByMechanism resolves them, so the load matrix and
// syncload can put their shed contention and sacrificed Bloom criteria
// (FCFS admission, see semscale's package comment) on the same footing.
//
// Disk, AlarmClock and OneSlot delegate to semsol: their private gate
// semaphores are per-request hand-offs where FIFO delivery is the
// specification, not a contended ingress worth striping.
func Variants() []Suite {
	mk := func(name string, f semscale.Factory) Suite {
		return Suite{
			Mechanism: name,
			NewBoundedBuffer: func(k kernel.Kernel, c int) problems.BoundedBuffer {
				return semscale.NewBoundedBuffer(f, c)
			},
			NewFCFS: func(k kernel.Kernel) problems.Resource { return semscale.NewFCFSResource(f) },
			NewReadersPriority: func(k kernel.Kernel) problems.RWStore {
				return semscale.NewReadersPriority(f)
			},
			NewWritersPriority: func(k kernel.Kernel) problems.RWStore {
				return semscale.NewWritersPriority(f)
			},
			NewFCFSRW: func(k kernel.Kernel) problems.RWStore { return semscale.NewFCFSRW(f) },
			NewDisk: func(k kernel.Kernel, start, max int64) problems.Disk {
				return semsol.NewDisk(start, max)
			},
			NewAlarmClock: func(k kernel.Kernel) problems.AlarmClock { return semsol.NewAlarmClock() },
			NewOneSlot:    func(k kernel.Kernel) problems.OneSlot { return semsol.NewOneSlot() },
		}
	}
	return []Suite{
		mk("semaphore-fast", semscale.FastFactory()),
		mk("semaphore-striped", semscale.StripedFactory(0)),
	}
}

// ByMechanism finds a suite by mechanism key, searching the six historical
// suites first, then the scalable variants.
func ByMechanism(name string) (Suite, bool) {
	for _, s := range All() {
		if s.Mechanism == name {
			return s, true
		}
	}
	for _, s := range Variants() {
		if s.Mechanism == name {
			return s, true
		}
	}
	return Suite{}, false
}

// RWConstructor returns the suite's constructor for the named
// readers–writers variant, or false for non-RW problem names. Shared by
// the standard-workload builder and the load subsystem, which otherwise
// would each hard-code the variant dispatch.
func RWConstructor(s Suite, problem string) (func(kernel.Kernel) problems.RWStore, bool) {
	switch problem {
	case problems.NameReadersPriority:
		return s.NewReadersPriority, true
	case problems.NameWritersPriority:
		return s.NewWritersPriority, true
	case problems.NameFCFSRW:
		return s.NewFCFSRW, true
	}
	return nil, false
}

// Standard workload parameters, shared by conformance tests, the
// evaluation engine, and the benchmarks so that all of them exercise the
// same histories.
const (
	StdBufferCap = 3
	StdDiskStart = 50
	StdDiskMax   = 200
)

// StdBBConfig is the standard bounded-buffer workload.
func StdBBConfig() problems.BBConfig {
	return problems.BBConfig{Producers: 3, Consumers: 2, ItemsPerProducer: 10, WorkYields: 2}
}

// StdFCFSConfig is the standard allocator workload.
func StdFCFSConfig() problems.FCFSConfig {
	return problems.FCFSConfig{Processes: 5, Rounds: 4, WorkYields: 2, GapYields: 3}
}

// StdRWConfig is the standard readers–writers workload.
func StdRWConfig() problems.RWConfig {
	return problems.RWConfig{Readers: 4, Writers: 2, Rounds: 4, ReadYields: 2, WriteYields: 3, GapYields: 2}
}

// StdDiskConfig is the standard disk workload: a pre-loaded batch plus
// staggered arrivals on both sides of the start track.
func StdDiskConfig() problems.DiskConfig {
	return problems.DiskConfig{
		Requests: []problems.DiskRequest{
			{Track: 55, Delay: 0},
			{Track: 10, Delay: 0},
			{Track: 60, Delay: 0},
			{Track: 90, Delay: 4},
			{Track: 20, Delay: 4},
			{Track: 75, Delay: 9},
			{Track: 40, Delay: 14},
			{Track: 120, Delay: 18},
		},
		WorkYields: 4,
	}
}

// StdClockConfig is the standard alarm-clock workload.
func StdClockConfig() problems.ClockConfig {
	return problems.ClockConfig{
		Sleepers: []problems.Sleeper{
			{Ticks: 5, Delay: 0},
			{Ticks: 2, Delay: 0},
			{Ticks: 9, Delay: 3},
			{Ticks: 1, Delay: 4},
			{Ticks: 7, Delay: 6},
			{Ticks: 3, Delay: 8},
		},
		TotalTicks: 15,
	}
}

// StdOneSlotConfig is the standard one-slot workload.
func StdOneSlotConfig() problems.OneSlotConfig {
	return problems.OneSlotConfig{Producers: 2, Consumers: 2, ItemsPerProducer: 8}
}

// StandardProgram returns the suite's solution to the named problem as a
// spawn-only program over the standard workload, plus the oracle that
// judges its traces. The program constructs a fresh solution instance per
// invocation and spawns the workload processes without running the
// kernel, which is exactly the shape schedule exploration needs (package
// explore replays the same program under many schedules). strict
// additionally checks priority/ordering constraints, which are exact only
// on deterministic (SimKernel) traces.
func StandardProgram(s Suite, problem string, strict bool) (func(k kernel.Kernel, r *trace.Recorder), func(trace.Trace) []problems.Violation, error) {
	var prog func(k kernel.Kernel, r *trace.Recorder)
	var check func(trace.Trace) []problems.Violation

	switch problem {
	case problems.NameBoundedBuffer:
		cfg := StdBBConfig()
		prog = func(k kernel.Kernel, r *trace.Recorder) {
			bb := s.NewBoundedBuffer(k, StdBufferCap)
			_ = problems.SpawnBoundedBuffer(k, bb, r, cfg) // Std config is valid
		}
		check = func(tr trace.Trace) []problems.Violation {
			return problems.CheckBoundedBuffer(tr, StdBufferCap, cfg.TotalItems())
		}
	case problems.NameFCFS:
		prog = func(k kernel.Kernel, r *trace.Recorder) {
			_ = problems.SpawnFCFS(k, s.NewFCFS(k), r, StdFCFSConfig())
		}
		check = func(tr trace.Trace) []problems.Violation { return problems.CheckFCFS(tr, strict) }
	case problems.NameReadersPriority, problems.NameWritersPriority, problems.NameFCFSRW:
		newDB, _ := RWConstructor(s, problem)
		prog = func(k kernel.Kernel, r *trace.Recorder) {
			_ = problems.SpawnRW(k, newDB(k), r, StdRWConfig())
		}
		check = func(tr trace.Trace) []problems.Violation {
			return problems.CheckRW(problem, tr, strict)
		}
	case problems.NameDisk:
		prog = func(k kernel.Kernel, r *trace.Recorder) {
			_ = problems.SpawnDisk(k, s.NewDisk(k, StdDiskStart, StdDiskMax), r, StdDiskConfig())
		}
		check = func(tr trace.Trace) []problems.Violation {
			return problems.CheckDisk(tr, StdDiskStart, strict)
		}
	case problems.NameAlarmClock:
		prog = func(k kernel.Kernel, r *trace.Recorder) {
			_ = problems.SpawnAlarmClock(k, s.NewAlarmClock(k), r, StdClockConfig())
		}
		check = problems.CheckAlarmClock
	case problems.NameOneSlot:
		cfg := StdOneSlotConfig()
		prog = func(k kernel.Kernel, r *trace.Recorder) {
			_ = problems.SpawnOneSlot(k, s.NewOneSlot(k), r, cfg)
		}
		check = func(tr trace.Trace) []problems.Violation {
			return problems.CheckOneSlot(tr, cfg.TotalItems())
		}
	default:
		return nil, nil, fmt.Errorf("solutions: unknown problem %q", problem)
	}
	return prog, check, nil
}

// RunStandard drives the suite's solution to the named problem with the
// standard workload on k, then judges the trace. strict additionally
// checks priority/ordering constraints, which are exact only on
// deterministic (SimKernel) traces. The trace is returned for further
// analysis; err is the kernel's verdict (deadlock, timeout).
func RunStandard(k kernel.Kernel, s Suite, problem string, strict bool) (trace.Trace, []problems.Violation, error) {
	prog, check, err := StandardProgram(s, problem, strict)
	if err != nil {
		return nil, nil, err
	}
	r := trace.NewRecorder(k)
	prog(k, r)
	err = k.Run()
	tr := r.Events()
	if err != nil {
		return tr, nil, fmt.Errorf("solutions: %s/%s: %w", s.Mechanism, problem, err)
	}
	return tr, check(tr), nil
}
