package solutions

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/problems"
)

// TestConformanceSim runs every (mechanism, problem) solution under the
// deterministic kernel with several scheduling policies and judges the
// traces with the problem oracles, including the strict priority checks.
//
// One pair is special: the paper's Figure-1 path-expression
// readers-priority solution is *known wrong* (footnote 3) — priority
// violations are permitted for it (and demonstrated deliberately in
// package eval); its exclusion constraint must still hold.
func TestConformanceSim(t *testing.T) {
	policies := map[string]func() kernel.Policy{
		"fifo":    kernel.FIFO,
		"lifo":    kernel.LIFO,
		"rand-1":  func() kernel.Policy { return kernel.Random(1) },
		"rand-7":  func() kernel.Policy { return kernel.Random(7) },
		"rand-42": func() kernel.Policy { return kernel.Random(42) },
	}
	for _, suite := range All() {
		for _, problem := range problems.AllProblems() {
			for polName, pol := range policies {
				name := fmt.Sprintf("%s/%s/%s", suite.Mechanism, problem, polName)
				// Strict (priority/ordering) oracles apply under the FIFO
				// schedule. Under adversarial policies a request can sit in
				// a mechanism's entry queue across a release — the
				// mechanism cannot see it yet, so trace-level priority
				// judgments are unsound there; adversarial schedules still
				// check all safety constraints. Controlled priority
				// scenarios live in package eval.
				strict := polName == "fifo"
				t.Run(name, func(t *testing.T) {
					k := kernel.NewSim(kernel.WithPolicy(pol()))
					tr, vs, err := RunStandard(k, suite, problem, strict)
					if err != nil {
						t.Fatalf("run failed: %v\ntrace:\n%s", err, tr)
					}
					figure1 := suite.Mechanism == "pathexpr" && problem == problems.NameReadersPriority
					for _, v := range vs {
						if figure1 && v.Rule == "readers-priority" {
							// The paper's footnote-3 anomaly: allowed here,
							// demonstrated in package eval.
							continue
						}
						t.Errorf("violation: %v", v)
					}
					if t.Failed() {
						t.Logf("trace:\n%s", tr)
					}
				})
			}
		}
	}
}

// TestConformanceReal runs every pair under the real kernel with the race
// detector active (via -race in CI), checking the safety constraints
// (exclusion, integrity) that remain exact under nondeterminism.
func TestConformanceReal(t *testing.T) {
	for _, suite := range All() {
		for _, problem := range problems.AllProblems() {
			name := fmt.Sprintf("%s/%s", suite.Mechanism, problem)
			t.Run(name, func(t *testing.T) {
				k := kernel.NewReal(kernel.WithWatchdog(60 * time.Second))
				tr, vs, err := RunStandard(k, suite, problem, false)
				if err != nil {
					t.Fatalf("run failed: %v", err)
				}
				for _, v := range vs {
					t.Errorf("violation: %v", v)
				}
				if t.Failed() {
					t.Logf("trace:\n%s", tr)
				}
			})
		}
	}
}

// TestRegistryComplete ensures every suite provides every factory.
func TestRegistryComplete(t *testing.T) {
	suites := All()
	if len(suites) != 6 {
		t.Fatalf("suites = %d, want 6", len(suites))
	}
	for _, s := range suites {
		if s.Mechanism == "" {
			t.Error("suite with empty mechanism name")
		}
		if s.NewBoundedBuffer == nil || s.NewFCFS == nil || s.NewReadersPriority == nil ||
			s.NewWritersPriority == nil || s.NewFCFSRW == nil || s.NewDisk == nil ||
			s.NewAlarmClock == nil || s.NewOneSlot == nil {
			t.Errorf("suite %s has a nil factory", s.Mechanism)
		}
	}
	if _, ok := ByMechanism("monitor"); !ok {
		t.Error("ByMechanism(monitor) not found")
	}
	if _, ok := ByMechanism("nope"); ok {
		t.Error("ByMechanism(nope) found")
	}
}

// TestSourcesEmbedded verifies the structural-analysis inputs are present.
func TestSourcesEmbedded(t *testing.T) {
	for _, dir := range []string{"ccrsol", "cspsol", "monitorsol", "pathexprsol", "semsol", "serializersol"} {
		entries, err := Sources.ReadDir(dir)
		if err != nil {
			t.Fatalf("embedded dir %s: %v", dir, err)
		}
		if len(entries) == 0 {
			t.Fatalf("embedded dir %s is empty", dir)
		}
	}
}

// TestUnknownProblemRejected covers the runner's error path.
func TestUnknownProblemRejected(t *testing.T) {
	k := kernel.NewSim()
	if _, _, err := RunStandard(k, All()[0], "no-such-problem", true); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

// TestDeterministicReplay: the reproducibility contract behind every
// experiment — running any (mechanism, problem) pair twice under the same
// policy yields byte-identical traces.
func TestDeterministicReplay(t *testing.T) {
	for _, suite := range All() {
		for _, problem := range problems.AllProblems() {
			name := fmt.Sprintf("%s/%s", suite.Mechanism, problem)
			t.Run(name, func(t *testing.T) {
				run := func() string {
					k := kernel.NewSim(kernel.WithPolicy(kernel.Random(99)))
					tr, _, err := RunStandard(k, suite, problem, false)
					if err != nil {
						t.Fatal(err)
					}
					return tr.String()
				}
				if run() != run() {
					t.Fatal("two identically-scheduled runs produced different traces")
				}
			})
		}
	}
}
