package solutions

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/problems"
)

// TestVariantsRegistry: the scalable variants resolve through ByMechanism
// without joining the six historical suites (All() stays the paper's set).
func TestVariantsRegistry(t *testing.T) {
	vs := Variants()
	if len(vs) != 2 {
		t.Fatalf("variants = %d, want 2", len(vs))
	}
	for _, s := range vs {
		if s.NewBoundedBuffer == nil || s.NewFCFS == nil || s.NewReadersPriority == nil ||
			s.NewWritersPriority == nil || s.NewFCFSRW == nil || s.NewDisk == nil ||
			s.NewAlarmClock == nil || s.NewOneSlot == nil {
			t.Errorf("variant suite %s has a nil factory", s.Mechanism)
		}
	}
	for _, name := range []string{"semaphore-fast", "semaphore-striped"} {
		if _, ok := ByMechanism(name); !ok {
			t.Errorf("ByMechanism(%s) not found", name)
		}
	}
	for _, s := range All() {
		if s.Mechanism == "semaphore-fast" || s.Mechanism == "semaphore-striped" {
			t.Errorf("variant %s leaked into All()", s.Mechanism)
		}
	}
}

// TestVariantConformanceSim runs the variant suites under the simulated
// kernel across scheduling policies. The safety constraints (exclusion,
// integrity) must hold everywhere; the strict ordering/priority oracles
// are NOT applied — barging semantics make FCFS-class criteria exactly the
// thing the variants sacrifice, demonstrated deterministically in package
// semscale's overtaking test and quantified by the load matrix.
func TestVariantConformanceSim(t *testing.T) {
	policies := map[string]func() kernel.Policy{
		"fifo":    kernel.FIFO,
		"lifo":    kernel.LIFO,
		"rand-1":  func() kernel.Policy { return kernel.Random(1) },
		"rand-7":  func() kernel.Policy { return kernel.Random(7) },
		"rand-42": func() kernel.Policy { return kernel.Random(42) },
	}
	for _, suite := range Variants() {
		for _, problem := range problems.AllProblems() {
			for polName, pol := range policies {
				name := fmt.Sprintf("%s/%s/%s", suite.Mechanism, problem, polName)
				t.Run(name, func(t *testing.T) {
					k := kernel.NewSim(kernel.WithPolicy(pol()))
					tr, vs, err := RunStandard(k, suite, problem, false)
					if err != nil {
						t.Fatalf("run failed: %v\ntrace:\n%s", err, tr)
					}
					for _, v := range vs {
						t.Errorf("violation: %v", v)
					}
					if t.Failed() {
						t.Logf("trace:\n%s", tr)
					}
				})
			}
		}
	}
}

// TestVariantConformanceReal runs the variant suites under the real kernel
// (with -race in CI): the CAS fast paths and the Dekker waiter protocol
// are exactly the code the race detector should sweat.
func TestVariantConformanceReal(t *testing.T) {
	for _, suite := range Variants() {
		for _, problem := range problems.AllProblems() {
			name := fmt.Sprintf("%s/%s", suite.Mechanism, problem)
			t.Run(name, func(t *testing.T) {
				k := kernel.NewReal(kernel.WithWatchdog(60 * time.Second))
				tr, vs, err := RunStandard(k, suite, problem, false)
				if err != nil {
					t.Fatalf("run failed: %v", err)
				}
				for _, v := range vs {
					t.Errorf("violation: %v", v)
				}
				if t.Failed() {
					t.Logf("trace:\n%s", tr)
				}
			})
		}
	}
}

// TestVariantDeterministicReplay: shard rotation and steal scans must not
// leak nondeterminism into the simulated kernel — identically-scheduled
// runs stay byte-identical, which is what validates using the variants
// under exploration at all.
func TestVariantDeterministicReplay(t *testing.T) {
	for _, suite := range Variants() {
		for _, problem := range problems.AllProblems() {
			name := fmt.Sprintf("%s/%s", suite.Mechanism, problem)
			t.Run(name, func(t *testing.T) {
				run := func() string {
					k := kernel.NewSim(kernel.WithPolicy(kernel.Random(99)))
					tr, _, err := RunStandard(k, suite, problem, false)
					if err != nil {
						t.Fatal(err)
					}
					return tr.String()
				}
				if run() != run() {
					t.Fatal("two identically-scheduled runs produced different traces")
				}
			})
		}
	}
}
