package synclint

import (
	"go/ast"
	"go/token"
	"strings"
)

// BracketAnalyzer checks that every exclusion bracket is balanced on all
// control-flow paths: monitor/serializer Enter has a matching Exit,
// Mutex Lock a matching Unlock, and trace enter/exit emissions come in
// pairs — including early returns and every branch of a conditional.
//
// Counting semaphores are checked only when a function both P's and V's
// the same semaphore unconditionally (the straight-line bracket use):
// conditional protocols (first-reader P, last-reader V) and
// cross-function permit transfer (P in Deposit, V in Remove) are
// legitimate semaphore idioms, not bugs.
var BracketAnalyzer = &Analyzer{
	Name: "bracket",
	Doc:  "Enter/Exit, Lock/Unlock, P/V, and trace emissions balanced on every path",
	run:  runBracket,
}

// Bracket keys are prefixed by kind: strong keys (m: mutex/monitor/
// serializer, t: trace pair) must balance on every path; weak keys
// (s: semaphore) balance only under the conditions above.
const (
	keyStrong = "m:"
	keyTrace  = "t:"
	keySem    = "s:"
)

func runBracket(pass *Pass) {
	forEachFrame(pass.Pkg, func(fn *frame) {
		b := &bracketWalk{pass: pass, fn: fn, deferred: map[string]int{}}
		b.prepass()
		st, terminated := b.block(fn.body.List, map[string]int{})
		if !terminated {
			b.checkExit(st, fn.body.End())
		}
	})
}

// frame is one function body analyzed independently: a FuncDecl or a
// FuncLit (closures execute in their own dynamic context).
type frame struct {
	name string
	body *ast.BlockStmt
}

// forEachFrame visits every FuncDecl body and every FuncLit body in the
// package, each exactly once.
func forEachFrame(pkg *Package, visit func(*frame)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(&frame{name: fd.Name.Name, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					visit(&frame{name: fd.Name.Name + " closure", body: lit.Body})
				}
				return true
			})
		}
	}
}

type bracketWalk struct {
	pass     *Pass
	fn       *frame
	deferred map[string]int
	// semSeen tracks which of P/V appear per semaphore and whether any
	// occurrence is conditional.
	semP, semV, semCond map[string]bool
}

func (b *bracketWalk) key(op Op) string {
	if op.Recv == nil {
		return ""
	}
	recv := exprText(b.pass.Pkg.Fset, op.Recv)
	switch op.Class {
	case OpAcquire, OpRelease:
		return keyStrong + recv
	case OpSemP, OpSemV:
		return keySem + recv
	case OpTraceEnter, OpTraceExit:
		// Keyed by recorder and operation argument, so interleaved pairs
		// for different operations don't collide.
		return keyTrace + recv + ":" + exprText(b.pass.Pkg.Fset, op.Call.Args[1])
	}
	return ""
}

// prepass records semaphore usage shape, skipping nested FuncLits (they
// are separate frames).
func (b *bracketWalk) prepass() {
	b.semP, b.semV, b.semCond = map[string]bool{}, map[string]bool{}, map[string]bool{}
	var walk func(n ast.Node, conditional bool)
	walk = func(n ast.Node, conditional bool) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, c := range childNodes(n) {
				walk(c, true)
			}
			return
		case *ast.CallExpr:
			op := classifyCall(x)
			if op.Class == OpSemP || op.Class == OpSemV {
				k := b.key(op)
				if op.Class == OpSemP {
					b.semP[k] = true
				} else {
					b.semV[k] = true
				}
				if conditional {
					b.semCond[k] = true
				}
			}
		}
		for _, c := range childNodes(n) {
			walk(c, conditional)
		}
	}
	for _, s := range b.fn.body.List {
		walk(s, false)
	}
}

// childNodes returns the direct AST children of n.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// scanOps applies mechanism-op deltas from an expression or simple
// statement, skipping nested FuncLits.
func (b *bracketWalk) scanOps(n ast.Node, st map[string]int) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		op := classifyCall(call)
		switch op.Class {
		case OpAcquire, OpSemP, OpTraceEnter:
			st[b.key(op)]++
		case OpRelease, OpSemV, OpTraceExit:
			st[b.key(op)]--
		}
		return true
	})
}

func cloneState(st map[string]int) map[string]int {
	out := make(map[string]int, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func (b *bracketWalk) block(list []ast.Stmt, st map[string]int) (map[string]int, bool) {
	for _, s := range list {
		var terminated bool
		st, terminated = b.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (b *bracketWalk) stmt(s ast.Stmt, st map[string]int) (map[string]int, bool) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return b.block(x.List, st)
	case *ast.IfStmt:
		b.scanOps(x.Init, st)
		b.scanOps(x.Cond, st)
		thenSt, thenTerm := b.block(x.Body.List, cloneState(st))
		elseSt, elseTerm := cloneState(st), false
		if x.Else != nil {
			elseSt, elseTerm = b.stmt(x.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			b.compareBranches(thenSt, elseSt, x.If)
			return thenSt, false
		}
	case *ast.ForStmt:
		b.scanOps(x.Init, st)
		b.scanOps(x.Cond, st)
		b.scanOps(x.Post, st)
		bodySt, term := b.block(x.Body.List, cloneState(st))
		if !term {
			b.compareLoop(st, bodySt, x.For)
		}
		return st, false
	case *ast.RangeStmt:
		b.scanOps(x.X, st)
		bodySt, term := b.block(x.Body.List, cloneState(st))
		if !term {
			b.compareLoop(st, bodySt, x.For)
		}
		return st, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.branches(s, st)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			b.scanOps(r, st)
		}
		b.checkExit(st, x.Pos())
		return st, true
	case *ast.DeferStmt:
		b.deferOps(x)
		return st, false
	case *ast.BranchStmt:
		// break/continue/goto transfer control elsewhere; stop checking
		// this path rather than model the jump.
		return st, true
	case *ast.LabeledStmt:
		return b.stmt(x.Stmt, st)
	case *ast.GoStmt:
		return st, false
	default:
		b.scanOps(s, st)
		return st, false
	}
}

// branches handles switch/type-switch/select uniformly.
func (b *bracketWalk) branches(s ast.Stmt, st map[string]int) (map[string]int, bool) {
	var bodies []*ast.BlockStmt
	switch x := s.(type) {
	case *ast.SwitchStmt:
		b.scanOps(x.Init, st)
		b.scanOps(x.Tag, st)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body, Lbrace: cc.Pos(), Rbrace: cc.End()})
			}
		}
	case *ast.TypeSwitchStmt:
		b.scanOps(x.Init, st)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body, Lbrace: cc.Pos(), Rbrace: cc.End()})
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body, Lbrace: cc.Pos(), Rbrace: cc.End()})
			}
		}
	}
	if len(bodies) == 0 {
		return st, false
	}
	var surviving []map[string]int
	for _, body := range bodies {
		bs, term := b.block(body.List, cloneState(st))
		if !term {
			surviving = append(surviving, bs)
		}
	}
	if len(surviving) == 0 {
		// Without a default clause control may still fall through.
		return st, false
	}
	for _, other := range surviving[1:] {
		b.compareBranches(surviving[0], other, s.Pos())
	}
	return surviving[0], false
}

func (b *bracketWalk) strongKeys(sts ...map[string]int) map[string]bool {
	keys := map[string]bool{}
	for _, st := range sts {
		for k := range st {
			if strings.HasPrefix(k, keyStrong) || strings.HasPrefix(k, keyTrace) {
				keys[k] = true
			}
		}
	}
	return keys
}

func (b *bracketWalk) compareBranches(a, c map[string]int, pos token.Pos) {
	for k := range b.strongKeys(a, c) {
		if a[k] != c[k] {
			b.pass.reportf(pos, "%s is %s on one branch but not the other in %s",
				displayKey(k), heldWord(a[k], c[k]), b.fn.name)
		}
	}
}

func (b *bracketWalk) compareLoop(entry, body map[string]int, pos token.Pos) {
	for k := range b.strongKeys(entry, body) {
		if entry[k] != body[k] {
			b.pass.reportf(pos, "%s changes balance by %+d across a loop iteration in %s",
				displayKey(k), body[k]-entry[k], b.fn.name)
		}
	}
}

func (b *bracketWalk) checkExit(st map[string]int, pos token.Pos) {
	for k, v := range st {
		net := v + b.deferred[k]
		if net == 0 {
			continue
		}
		switch {
		case strings.HasPrefix(k, keyStrong):
			b.pass.reportf(pos, "%s left unbalanced at function exit (net %+d) in %s", displayKey(k), net, b.fn.name)
		case strings.HasPrefix(k, keyTrace):
			b.pass.reportf(pos, "trace %s emission unbalanced at function exit (net %+d) in %s", displayKey(k), net, b.fn.name)
		case strings.HasPrefix(k, keySem):
			if b.semP[k] && b.semV[k] && !b.semCond[k] {
				b.pass.reportf(pos, "semaphore %s unbalanced at function exit (net %+d) in %s", displayKey(k), net, b.fn.name)
			}
		}
	}
}

func (b *bracketWalk) deferOps(d *ast.DeferStmt) {
	apply := func(call *ast.CallExpr) {
		op := classifyCall(call)
		switch op.Class {
		case OpRelease, OpSemV, OpTraceExit:
			b.deferred[b.key(op)]--
		case OpAcquire, OpSemP, OpTraceEnter:
			b.deferred[b.key(op)]++
		}
	}
	apply(d.Call)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				apply(call)
			}
			return true
		})
	}
}

func displayKey(k string) string {
	return k[2:]
}

func heldWord(a, c int) string {
	if a > c {
		return "held"
	}
	return "released"
}
