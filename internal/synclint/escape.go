package synclint

import (
	"go/ast"
	"go/token"
	"sort"
)

// EscapeAnalyzer checks whether a solution type's resource state is only
// touched under its synchronization mechanism, and HOW it is protected:
//
//   - structural: the access sits inside a closure the mechanism itself
//     runs (a CCR body, a path-expression operation, a serializer
//     guarantee) — the mechanism associates synchronization with the
//     resource, the paper's §2 encapsulation requirement;
//   - discipline: the access sits between an acquire and a release the
//     programmer wrote (Enter/Exit, Lock/Unlock, P/V) — correct, but
//     only by convention;
//   - escaped: neither — a finding.
//
// The per-type tally mechanically derives the Encapsulation column of
// the T3 modularity table: a type is mechanism-bound if it has no
// mutable resource state at all or at least one structural access, and a
// mechanism is rated encapsulated when a majority of its solution types
// are bound.
var EscapeAnalyzer = &Analyzer{
	Name: "escape",
	Doc:  "resource-state fields accessed outside the solution's bracketed operations",
	run:  runEscape,
}

func runEscape(pass *Pass) {
	analyzeEscape(pass.Pkg, pass.Model, pass)
}

// TypeEscape is the escape tally for one solution type.
type TypeEscape struct {
	Type          string
	MutableFields []string
	// Access counts by protection class.
	Structural, Discipline, Escaped int
}

// Bound reports whether the mechanism itself is associated with the
// type's resource state (no mutable state, or state the mechanism runs).
func (t TypeEscape) Bound() bool {
	return len(t.MutableFields) == 0 || t.Structural > 0
}

// EscapeSummary is the per-package escape tally.
type EscapeSummary struct {
	Types []TypeEscape
}

// BoundCount counts mechanism-bound types.
func (s EscapeSummary) BoundCount() int {
	n := 0
	for _, t := range s.Types {
		if t.Bound() {
			n++
		}
	}
	return n
}

// Encapsulated is the mechanical T3 verdict: a majority of the package's
// solution types are mechanism-bound.
func (s EscapeSummary) Encapsulated() bool {
	return len(s.Types) > 0 && 2*s.BoundCount() > len(s.Types)
}

// AnalyzeEscape runs the escape analysis standalone and returns the
// summary used by eval's T3 report alongside any findings.
func AnalyzeEscape(pkg *Package) (EscapeSummary, []Finding) {
	model := buildModel(pkg)
	pass := &Pass{Pkg: pkg, Model: model, analyzer: EscapeAnalyzer}
	sum := analyzeEscape(pkg, model, pass)
	return sum, pass.findings
}

// Protection classes, ordered so higher is stronger.
const (
	ctxNone = iota
	ctxDiscipline
	ctxStructural
)

type escAccess struct {
	field  string
	method string
	ctx    int
	pos    token.Pos
}

type escCallSite struct {
	callee string // method key "Type.Name"
	ctx    int
}

func analyzeEscape(pkg *Package, model *Model, pass *Pass) EscapeSummary {
	sum := EscapeSummary{}
	if !model.UsesMechanisms {
		// A package importing no mechanism has no bracket discipline to
		// escape from; the analyzer is vacuous there (the kernel, trace,
		// and exploration substrate).
		return sum
	}
	var names []string
	for name, si := range model.Structs {
		if si.ProcMethods > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	accesses := map[string][]escAccess{}    // struct -> accesses
	callSites := map[string][]escCallSite{} // enclosing method key -> sites

	for _, name := range names {
		si := model.Structs[name]
		for _, fi := range model.Funcs {
			if fi.Recv != name || fi.Decl.Body == nil {
				continue
			}
			w := &escWalk{
				pkg: pkg, model: model, si: si, fn: fi,
				methodKey: fi.Name,
			}
			w.walk(fi.Decl.Body, ctxNone)
			accesses[name] = append(accesses[name], w.accesses...)
			callSites[fi.Name] = append(callSites[fi.Name], w.calls...)
		}
	}

	// Ambient protection: a helper method whose every intra-package call
	// site is protected inherits the weakest caller protection. Iterate
	// to a fixed point for helper-calling-helper chains.
	ambient := map[string]int{}
	for i := 0; i < 4; i++ {
		changed := false
		siteCtxByCallee := map[string][]int{}
		for caller, sites := range callSites {
			for _, s := range sites {
				eff := s.ctx
				if a := ambient[caller]; a > eff {
					eff = a
				}
				siteCtxByCallee[s.callee] = append(siteCtxByCallee[s.callee], eff)
			}
		}
		for callee, ctxs := range siteCtxByCallee {
			meet := ctxStructural
			for _, c := range ctxs {
				if c < meet {
					meet = c
				}
			}
			if ambient[callee] != meet {
				ambient[callee] = meet
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for _, name := range names {
		si := model.Structs[name]
		te := TypeEscape{Type: name}
		for f := range si.Mutable {
			te.MutableFields = append(te.MutableFields, f)
		}
		sort.Strings(te.MutableFields)
		for _, a := range accesses[name] {
			eff := a.ctx
			if amb := ambient[a.method]; a.ctx == ctxNone && amb > eff {
				eff = amb
			}
			switch eff {
			case ctxStructural:
				te.Structural++
			case ctxDiscipline:
				te.Discipline++
			default:
				te.Escaped++
				if pass != nil {
					pass.reportf(a.pos, "state field %s.%s accessed outside any synchronization bracket in %s",
						name, a.field, a.method)
				}
			}
		}
		sum.Types = append(sum.Types, te)
	}
	return sum
}

type escWalk struct {
	pkg       *Package
	model     *Model
	si        *StructInfo
	fn        *FuncInfo
	methodKey string
	depth     int
	sticky    bool
	accesses  []escAccess
	calls     []escCallSite
}

func (w *escWalk) ctx(structural bool) int {
	if structural {
		return ctxStructural
	}
	if w.depth > 0 || w.sticky {
		return ctxDiscipline
	}
	return ctxNone
}

// walk traverses in syntactic order; structural marks subtrees that are
// closures run by a mechanism operation.
func (w *escWalk) walk(n ast.Node, ctx int) {
	structural := ctx == ctxStructural
	switch x := n.(type) {
	case nil:
		return
	case *ast.IfStmt:
		// Branches are separate paths: a release inside the then-branch
		// must not strip protection from the else-branch, and a branch
		// that returns (unlock-early-and-exit) does not constrain the
		// fall-through. Afterwards keep the weakest surviving branch.
		w.walk(x.Init, ctx)
		w.walk(x.Cond, ctx)
		entryD, entryS := w.depth, w.sticky
		type exitState struct {
			d int
			s bool
		}
		var exits []exitState
		runBranch := func(s ast.Stmt) {
			w.depth, w.sticky = entryD, entryS
			w.walk(s, ctx)
			if !stmtTerminates(s) {
				exits = append(exits, exitState{w.depth, w.sticky})
			}
		}
		runBranch(x.Body)
		if x.Else != nil {
			runBranch(x.Else)
		} else {
			exits = append(exits, exitState{entryD, entryS})
		}
		w.depth, w.sticky = entryD, entryS
		for i, e := range exits {
			if i == 0 || e.d < w.depth {
				w.depth = e.d
			}
			w.sticky = w.sticky && e.s
		}
		return
	case *ast.CallExpr:
		op := classifyCall(x)
		switch op.Class {
		case OpAcquire, OpSemP:
			w.walkChildren(x, ctx)
			w.depth++
			return
		case OpRelease, OpSemV:
			w.walkChildren(x, ctx)
			if w.depth > 0 {
				w.depth--
			}
			return
		case OpNone:
			w.recordCall(x, structural)
		default:
			// Mechanism op with closure payloads: plain args keep the
			// current context, closures become structural (guards and
			// bodies run by the mechanism) or a fresh frame (crowd
			// bodies, spawned processes — already unsynchronized, keep
			// current context which is what the access would get).
			protected, released := closureArgs(op)
			isClosure := map[*ast.FuncLit]bool{}
			for _, l := range protected {
				isClosure[l] = true
			}
			for _, l := range released {
				isClosure[l] = true
			}
			for _, a := range x.Args {
				if lit, ok := a.(*ast.FuncLit); ok && isClosure[lit] {
					continue
				}
				w.walk(a, ctx)
			}
			for _, l := range protected {
				w.walk(l.Body, ctxStructural)
			}
			for _, l := range released {
				savedDepth, savedSticky := w.depth, w.sticky
				w.depth, w.sticky = 0, false
				w.walk(l.Body, ctxNone)
				w.depth, w.sticky = savedDepth, savedSticky
			}
			return
		}
	case *ast.SelectorExpr:
		if base, ok := x.X.(*ast.Ident); ok && base.Name == w.fn.RecvVar {
			if w.si.Mutable[x.Sel.Name] {
				w.accesses = append(w.accesses, escAccess{
					field:  x.Sel.Name,
					method: w.methodKey,
					ctx:    w.ctx(structural),
					pos:    x.Pos(),
				})
			}
			return
		}
	case *ast.FuncLit:
		// A bare closure (not a mechanism payload): its body runs in an
		// unknown dynamic context; analyze with the current one.
		w.walk(x.Body, ctx)
		return
	}
	w.walkChildren(n, ctx)
}

// stmtTerminates reports whether a statement always leaves the function
// (the shapes the solutions use; goto-style exotica is out of scope).
func stmtTerminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		if len(x.List) == 0 {
			return false
		}
		return stmtTerminates(x.List[len(x.List)-1])
	case *ast.IfStmt:
		return x.Else != nil && stmtTerminates(x.Body) && stmtTerminates(x.Else)
	}
	return false
}

func (w *escWalk) walkChildren(n ast.Node, ctx int) {
	for _, c := range childNodes(n) {
		w.walk(c, ctx)
	}
}

// recordCall notes helper-method call sites (for ambient protection) and
// applies the sticky-touch rule: after a call into a helper that itself
// performs mechanism operations (d.lock(p) wrapping set.Exec), treat the
// rest of the method as discipline-covered.
func (w *escWalk) recordCall(call *ast.CallExpr, structural bool) {
	key := w.model.resolveCall(w.fn, nil, call)
	if key == "" {
		if id, ok := call.Fun.(*ast.Ident); ok && w.model.Funcs[id.Name] != nil {
			key = id.Name
		}
	}
	if key == "" {
		return
	}
	if fi := w.model.Funcs[key]; fi != nil && fi.Touches {
		w.sticky = true
	}
	if w.model.Structs[w.fn.Recv] != nil && w.model.Funcs[key] != nil && w.model.Funcs[key].Recv == w.fn.Recv {
		w.calls = append(w.calls, escCallSite{callee: key, ctx: w.ctx(structural)})
	}
}
