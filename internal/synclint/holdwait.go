package synclint

import (
	"go/ast"
	"go/token"
)

// HoldWaitAnalyzer finds blocking calls reachable while an exclusion
// bracket is held — the paper's §5.2 nested-monitor-call hazard [18]. A
// Wait or Enqueue on a component of the HELD mechanism is the intended
// use (the mechanism releases itself before blocking) and is exempt;
// everything else that can block — a P, an inner Enter or Lock, a CSP
// channel operation, a CCR/path-expression operation, or a call to a
// function that transitively blocks — is reported.
var HoldWaitAnalyzer = &Analyzer{
	Name: "holdwait",
	Doc:  "blocking call reachable while an outer mechanism is held (nested-monitor hazard)",
	run:  runHoldWait,
}

func runHoldWait(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			h := &holdWalk{
				pass:        pass,
				fn:          pass.Model.Funcs[funcKey(fd)],
				localOwners: map[string]string{},
				litBlocks:   map[string]bool{},
				visited:     map[*ast.FuncLit]bool{},
			}
			if h.fn != nil {
				h.localTypes = pass.Model.localTypes(h.fn)
			}
			h.prescanBindings(fd.Body)
			h.walkBody(fd.Body, nil)
			// Closures not dispatched through a mechanism call run in
			// their own dynamic context, holding nothing.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && !h.visited[lit] {
					h.visited[lit] = true
					h.walkBody(lit.Body, nil)
				}
				return true
			})
		}
	}
}

func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return typeText(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return fd.Name.Name
}

type heldEntry struct {
	key  string // rendered receiver: "outer", "d.mutex"
	recv ast.Expr
}

type holdWalk struct {
	pass *Pass
	fn   *FuncInfo
	// localOwners maps component locals to their owner's rendered key:
	// notFull := m.NewCondition(...)  =>  localOwners["notFull"] = "m".
	localOwners map[string]string
	// litBlocks records, per local closure binding, whether its body may
	// block (innerGet := func(p){ inner.Enter(p); ... }).
	litBlocks  map[string]bool
	localTypes map[string]string
	visited    map[*ast.FuncLit]bool
}

// prescanBindings collects component locals and closure-binding block
// summaries for the whole declaration, including nested closures (their
// bindings share the enclosing function's scope for our purposes).
func (h *holdWalk) prescanBindings(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			switch rhs := as.Rhs[i].(type) {
			case *ast.CallExpr:
				if sel, ok := rhs.Fun.(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "NewCondition", "NewQueue", "NewCrowd":
						h.localOwners[id.Name] = exprText(h.pass.Pkg.Fset, sel.X)
					}
				}
			case *ast.FuncLit:
				if h.litBlocks[id.Name] || h.litMayBlock(rhs) {
					h.litBlocks[id.Name] = true
				}
			}
		}
		return true
	})
	// One propagation round: a closure calling a blocking closure blocks.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok || h.litBlocks[id.Name] {
					continue
				}
				if lit, ok := as.Rhs[i].(*ast.FuncLit); ok && h.litCallsBlocking(lit) {
					h.litBlocks[id.Name] = true
					changed = true
				}
			}
			return true
		})
	}
}

func (h *holdWalk) litMayBlock(lit *ast.FuncLit) bool {
	blocks := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if classifyCall(call).Blocking() {
				blocks = true
			}
		}
		return !blocks
	})
	return blocks || h.litCallsBlocking(lit)
}

func (h *holdWalk) litCallsBlocking(lit *ast.FuncLit) bool {
	blocks := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !blocks
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if h.litBlocks[id.Name] {
				blocks = true
			}
			if fi := h.pass.Model.Funcs[id.Name]; fi != nil && fi.Blocks {
				blocks = true
			}
		}
		return !blocks
	})
	return blocks
}

// walkBody traverses one dynamic frame in syntactic order, tracking the
// stack of held brackets.
func (h *holdWalk) walkBody(body *ast.BlockStmt, held []heldEntry) {
	heldStack := append([]heldEntry{}, held...)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if !h.visited[x] {
				h.visited[x] = true
				h.walkBody(x.Body, nil)
			}
			return
		case *ast.CallExpr:
			op := classifyCall(x)
			h.handleOp(op, &heldStack)
			if op.Class != OpNone {
				// Receivers and plain args first, then closures in their
				// mechanism context.
				for _, a := range x.Args {
					if _, ok := a.(*ast.FuncLit); !ok {
						walk(a)
					}
				}
				h.walkClosureArgs(op, heldStack)
				return
			}
			h.handlePlainCall(x, heldStack)
		}
		for _, c := range childNodes(n) {
			walk(c)
		}
	}
	for _, s := range body.List {
		walk(s)
	}
}

func (h *holdWalk) walkClosureArgs(op Op, held []heldEntry) {
	protected, released := closureArgs(op)
	key := ""
	if op.Recv != nil {
		key = exprText(h.pass.Pkg.Fset, op.Recv)
	}
	for _, lit := range protected {
		if !h.visited[lit] {
			h.visited[lit] = true
			h.walkBody(lit.Body, []heldEntry{{key: key, recv: op.Recv}})
		}
	}
	for _, lit := range released {
		if !h.visited[lit] {
			h.visited[lit] = true
			h.walkBody(lit.Body, nil)
		}
	}
}

func (h *holdWalk) handleOp(op Op, held *[]heldEntry) {
	switch op.Class {
	case OpAcquire:
		if len(*held) > 0 {
			h.report(op.Call.Pos(), "%s acquired while %s is held", h.recvText(op), (*held)[len(*held)-1].key)
		}
		*held = append(*held, heldEntry{key: h.recvText(op), recv: op.Recv})
	case OpRelease:
		key := h.recvText(op)
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i].key == key {
				*held = append((*held)[:i], (*held)[i+1:]...)
				break
			}
		}
	case OpWait, OpEnqueue, OpJoin, OpSignal:
		// Operations on a component of a held mechanism release (or keep)
		// that mechanism by construction; on anything else they block
		// while the bracket stays held.
		if op.Class == OpSignal {
			return
		}
		if len(*held) == 0 || h.componentOfHeld(op.Recv, *held) {
			return
		}
		h.report(op.Call.Pos(), "%s on %s blocks while %s is held", opWord(op), h.recvText(op), (*held)[len(*held)-1].key)
	default:
		if op.Class == OpExec && h.heldContains(*held, h.recvText(op)) {
			// A path operation nested in another operation of the SAME set
			// is the hierarchical-path idiom of §5.1 (requestread = begin
			// read end); whether the nesting is admissible is decided by
			// the compiled path at run time, not a nested-monitor hazard.
			return
		}
		if op.Blocking() && len(*held) > 0 {
			h.report(op.Call.Pos(), "%s on %s blocks while %s is held", opWord(op), h.recvText(op), (*held)[len(*held)-1].key)
		}
	}
}

func (h *holdWalk) handlePlainCall(call *ast.CallExpr, held []heldEntry) {
	if len(held) == 0 {
		return
	}
	name := ""
	blocks := false
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
		if h.litBlocks[name] {
			blocks = true
		}
		if fi := h.pass.Model.Funcs[name]; fi != nil && fi.Blocks {
			blocks = true
		}
	case *ast.SelectorExpr:
		if h.fn != nil {
			if key := h.pass.Model.resolveCall(h.fn, h.localTypes, call); key != "" {
				name = key
				if fi := h.pass.Model.Funcs[key]; fi != nil && fi.Blocks {
					blocks = true
				}
			}
		}
	}
	if blocks {
		h.report(call.Pos(), "call to %s may block while %s is held", name, held[len(held)-1].key)
	}
}

func (h *holdWalk) heldContains(held []heldEntry, key string) bool {
	for _, e := range held {
		if e.key == key {
			return true
		}
	}
	return false
}

// componentOfHeld reports whether recv is a condition/queue/crowd owned
// by one of the held mechanisms.
func (h *holdWalk) componentOfHeld(recv ast.Expr, held []heldEntry) bool {
	if recv == nil {
		return false
	}
	ownerKey := ""
	switch x := recv.(type) {
	case *ast.Ident:
		ownerKey = h.localOwners[x.Name]
	case *ast.SelectorExpr:
		if base, ok := x.X.(*ast.Ident); ok {
			if owner := h.fieldOwner(base, x.Sel.Name); owner != "" {
				ownerKey = base.Name + "." + owner
			}
		}
	}
	if ownerKey == "" {
		return false
	}
	for _, e := range held {
		if e.key == ownerKey {
			return true
		}
	}
	return false
}

func (h *holdWalk) fieldOwner(base *ast.Ident, field string) string {
	if h.fn == nil {
		return ""
	}
	structName := ""
	if base.Name == h.fn.RecvVar && h.fn.Recv != "" {
		structName = h.fn.Recv
	} else if t := h.localTypes[base.Name]; t != "" {
		structName = t
	}
	si := h.pass.Model.Structs[structName]
	if si == nil {
		return ""
	}
	if f := si.Fields[field]; f != nil {
		return f.Owner
	}
	return ""
}

func (h *holdWalk) recvText(op Op) string {
	if op.Recv == nil {
		return "<pkg>"
	}
	return exprText(h.pass.Pkg.Fset, op.Recv)
}

func (h *holdWalk) report(pos token.Pos, format string, args ...any) {
	h.pass.reportf(pos, format, args...)
}

func opWord(op Op) string {
	switch op.Class {
	case OpWait:
		return "Wait"
	case OpEnqueue:
		return "Enqueue"
	case OpJoin:
		return "Join"
	case OpSemP:
		return "P"
	case OpChanOp:
		return "channel operation"
	case OpExecute, OpAwait:
		return "region operation"
	case OpExec:
		return "path operation"
	case OpDo:
		return "Do"
	}
	return "blocking operation"
}
