package synclint

import (
	"go/ast"
)

// KernelAPIAnalyzer checks the kernel's process-identity contract:
//
//  1. a *kernel.Proc belongs to exactly one process — a spawned body
//     that captures an enclosing function's Proc would park, yield, or
//     unpark on behalf of the wrong process;
//  2. kernel operations are meaningless after Run returns — the
//     scheduler has shut down, so a Spawn after Run can never execute;
//  3. SnapshotAt and Restore operate on whole runs — capture requires a
//     finished run and restore re-arms the kernel for the next one — so
//     calling either from inside a spawned process body (while the
//     scheduler is mid-run) can only observe or clobber a half-built
//     run.
var KernelAPIAnalyzer = &Analyzer{
	Name: "kernelapi",
	Doc:  "*kernel.Proc captured across a Spawn boundary, kernel ops after Run returns, or Snapshot/Restore from inside a run",
	run:  runKernelAPI,
}

func runKernelAPI(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkProcCapture(pass, fd)
			checkPostRun(pass, fd)
			checkSnapshotBetweenRuns(pass, fd)
		}
	}
}

// checkSnapshotBetweenRuns reports SnapshotAt and Restore calls inside a
// spawned process body. Both are between-runs operations: SnapshotAt
// reads the finished run's decision history and Restore re-arms the
// kernel for the next run, so from inside a running process either one
// races the very run it executes in. (Non-spawn closures run on the
// declaring process and inherit its context.)
func checkSnapshotBetweenRuns(pass *Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node, inSpawn bool)
	walk = func(n ast.Node, inSpawn bool) {
		if n == nil {
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && inSpawn {
				if name, n := sel.Sel.Name, len(call.Args); (name == "SnapshotAt" && n == 1) ||
					(name == "Restore" && n >= 1) {
					pass.reportf(call.Pos(), "%s inside a spawned process body: snapshots capture and restore whole runs, legal only between runs", name)
				}
			}
			if classifyCall(call).Class == OpSpawn {
				for _, a := range call.Args {
					if lit, ok := a.(*ast.FuncLit); ok {
						walk(lit.Body, true)
						continue
					}
					walk(a, inSpawn)
				}
				walk(call.Fun, inSpawn)
				return
			}
		}
		for _, c := range childNodes(n) {
			walk(c, inSpawn)
		}
	}
	walk(fd.Body, false)
}

// procParams returns the names of *kernel.Proc parameters of a function
// type.
func procParams(ft *ast.FuncType) []string {
	var out []string
	if ft.Params == nil {
		return out
	}
	for _, p := range ft.Params.List {
		if star, ok := p.Type.(*ast.StarExpr); ok && isProcType(star) {
			for _, id := range p.Names {
				out = append(out, id.Name)
			}
		}
	}
	return out
}

// checkProcCapture walks the declaration keeping the set of Proc names
// in scope; inside a spawned body, references to Proc names declared
// OUTSIDE that body are reported.
func checkProcCapture(pass *Pass, fd *ast.FuncDecl) {
	// scope maps a Proc identifier to whether it is tainted (declared
	// outside the innermost spawn boundary).
	var walk func(n ast.Node, scope map[string]bool)
	walk = func(n ast.Node, scope map[string]bool) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.Ident:
			if scope[x.Name] {
				pass.reportf(x.Pos(), "spawned process body captures %s, a *kernel.Proc of the enclosing process", x.Name)
				// Report each name once per spawn body.
				scope[x.Name] = false
			}
			return
		case *ast.AssignStmt:
			if x.Tok.String() == ":=" {
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						// A new local shadows any tainted Proc.
						delete(scope, id.Name)
					}
				}
			}
		case *ast.CallExpr:
			op := classifyCall(x)
			if op.Class == OpSpawn {
				for _, a := range x.Args {
					lit, ok := a.(*ast.FuncLit)
					if !ok {
						walk(a, scope)
						continue
					}
					inner := map[string]bool{}
					for name := range scope {
						inner[name] = true // everything outer is now foreign
					}
					for _, name := range procParams(lit.Type) {
						inner[name] = false // the body's own Proc
					}
					walk(lit.Body, inner)
				}
				walk(x.Fun, scope)
				return
			}
		case *ast.FuncLit:
			// A non-spawn closure runs on the declaring process: its own
			// Proc params enter scope untainted, outer taint persists.
			inner := map[string]bool{}
			for name, t := range scope {
				inner[name] = t
			}
			for _, name := range procParams(x.Type) {
				inner[name] = false
			}
			walk(x.Body, inner)
			return
		case *ast.SelectorExpr:
			walk(x.X, scope)
			return
		case *ast.KeyValueExpr:
			walk(x.Value, scope)
			return
		}
		for _, c := range childNodes(n) {
			walk(c, scope)
		}
	}
	scope := map[string]bool{}
	for _, name := range procParams(fd.Type) {
		scope[name] = false // in scope, not tainted
	}
	walk(fd.Body, scope)
}

// checkPostRun reports kernel operations that appear, in statement
// order, after a Run() call on the same kernel variable in the same
// function body (closures are excluded: they execute during Run).
func checkPostRun(pass *Pass, fd *ast.FuncDecl) {
	ran := map[string]bool{} // kernel var name -> Run() seen
	anyRan := ""
	var scanStmt func(s ast.Stmt)
	scanExpr := func(e ast.Node) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			op := classifyCall(call)
			recvName := ""
			if op.Recv != nil {
				if id, ok := op.Recv.(*ast.Ident); ok {
					recvName = id.Name
				}
			}
			switch op.Class {
			case OpRun:
				if recvName != "" {
					ran[recvName] = true
					anyRan = recvName
				}
			case OpSpawn:
				if recvName != "" && ran[recvName] {
					pass.reportf(call.Pos(), "Spawn on %s after %s.Run() returned: the scheduler has shut down", recvName, recvName)
				}
			default:
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					// Reset revives a finished SimKernel for another
					// Spawn/Run cycle (run recycling), and Close only
					// releases its pooled workers — neither leaves the
					// kernel in the shut-down state, so both clear the
					// post-Run taint for their receiver.
					if name := sel.Sel.Name; name == "Reset" || name == "Close" {
						if id, ok := sel.X.(*ast.Ident); ok && ran[id.Name] {
							delete(ran, id.Name)
							if anyRan == id.Name {
								anyRan = ""
							}
						}
						return true
					}
					if anyRan != "" {
						switch sel.Sel.Name {
						case "Park", "Unpark", "Yield":
							if len(call.Args) == 0 {
								pass.reportf(call.Pos(), "%s after %s.Run() returned: no process is scheduled anymore",
									sel.Sel.Name, anyRan)
							}
						}
					}
				}
			}
			return true
		})
	}
	scanStmt = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.AssignStmt:
			// Re-binding the kernel variable resets its Run state.
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && ran[id.Name] {
					delete(ran, id.Name)
					if anyRan == id.Name {
						anyRan = ""
					}
				}
			}
			scanExpr(x)
		case *ast.BlockStmt:
			for _, s2 := range x.List {
				scanStmt(s2)
			}
		case *ast.IfStmt:
			scanExpr(x.Init)
			scanExpr(x.Cond)
			scanStmt(x.Body)
			if x.Else != nil {
				scanStmt(x.Else)
			}
		case *ast.ForStmt:
			scanExpr(x.Init)
			scanExpr(x.Cond)
			scanStmt(x.Body)
			scanExpr(x.Post)
		case *ast.RangeStmt:
			scanExpr(x.X)
			scanStmt(x.Body)
		case *ast.SwitchStmt:
			scanExpr(x.Init)
			scanExpr(x.Tag)
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, s2 := range cc.Body {
						scanStmt(s2)
					}
				}
			}
		default:
			scanExpr(s)
		}
	}
	for _, s := range fd.Body.List {
		scanStmt(s)
	}
}
