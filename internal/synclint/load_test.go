package synclint

import "testing"

// Load-generator-shaped fixtures: a driver that spawns one closure per
// arrival, with the operation's trace pair recorded inside the spawned
// closure. This is the shape internal/load's engine uses, and the
// analyzers must judge it the same way they judge solution code.

// An arrival closure that can bail out between Enter and Exit leaks an
// open interval into the trace — the oracle would see a phantom
// still-running operation.
func TestBracketLoadGeneratorPositive(t *testing.T) {
	findings, _ := runOne(t, BracketAnalyzer, `
package fixture

func Generate(k *Kernel, rec *Recorder, hurry bool) {
	k.Spawn("op", func(p *Proc) {
		rec.Enter(p, "use", 0)
		if hurry {
			return // abandons the op with its trace interval open
		}
		rec.Exit(p, "use", 0)
	})
}
`)
	wantFinding(t, findings, "trace")
}

// The engine's actual shape — pair balanced within the spawned closure,
// each arrival a fresh process — is clean.
func TestBracketLoadGeneratorNegative(t *testing.T) {
	findings, _ := runOne(t, BracketAnalyzer, `
package fixture

func Generate(k *Kernel, rec *Recorder, n int) {
	for i := 0; i < n; i++ {
		k.Spawn("op", func(p *Proc) {
			rec.Enter(p, "use", 0)
			p.Yield()
			rec.Exit(p, "use", 0)
		})
	}
}
`)
	wantClean(t, findings)
}

// The load package itself must pass the bracket and escape analyzers:
// its measurement hooks wrap every solution operation, so an imbalance
// there would corrupt every real-runtime trace it records. One shape is
// suppressed by design rather than restructured: the synth workload
// records Enter/Exit through adapter hooks (the emissions fire inside
// the mechanism's grant/release critical sections, so they cannot be
// lexically paired in one closure — see synth.Hooks), carried by the
// reasoned bracket allow on buildSynthWorkload. Any suppression beyond
// that one function still fails here.
func TestLoadPackageDiscipline(t *testing.T) {
	pkg, err := LoadDir("../load")
	if err != nil {
		t.Fatalf("load ../load: %v", err)
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded from ../load")
	}
	findings, suppressed := Run(pkg, []*Analyzer{BracketAnalyzer, EscapeAnalyzer})
	if suppressed > 2 {
		t.Fatalf("load package needs %d allow-annotations; only buildSynthWorkload's hook-split bracket pair (2) is sanctioned", suppressed)
	}
	wantClean(t, findings)
}
