package synclint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrderAnalyzer builds a static lock-order graph over the package's
// discipline objects and reports potential cyclic waits. Nodes are the
// typed lock identities of the summary layer (a monitor field, a split
// semaphore, a serializer, a region); a directed edge a→b is recorded
// whenever b is acquired — directly or through any chain of local
// helpers — while a is held. A cycle in this graph is the classic
// deadlock precondition: two processes can each hold one lock of the
// cycle and wait forever for the next. Each edge keeps its acquisition
// path (function, position, helper chain), so the report reads as an
// executable recipe, which is exactly what the xcheck hunt feeds to the
// schedule explorer.
//
// Waits, enqueues, and joins on components of a held mechanism release
// their owner by construction and never form edges; re-acquisition of
// the same lock (a self-edge) is holdwait's finding, not ours.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "cyclic lock-acquisition order across the package (potential deadlock)",
	run:  runLockOrder,
}

// lockEdge is one recorded "to acquired while from held" fact, with the
// first acquisition path seen.
type lockEdge struct {
	from, to LockRef
	pos      token.Pos
	fn       string
	path     []string
}

func (e *lockEdge) describe(fset *token.FileSet) string {
	s := fmt.Sprintf("%s acquired while %s held at %s in %s",
		lockDisp(e.to), lockDisp(e.from), shortPos(fset, e.pos), e.fn)
	if len(e.path) > 0 {
		s += " via " + strings.Join(e.path, " → ")
	}
	return s
}

// lockDisp renders a lock key for humans.
func lockDisp(r LockRef) string {
	key := r.Key
	for _, p := range []string{"field:", "global:", "local:", "expr:"} {
		if rest, ok := strings.CutPrefix(key, p); ok {
			return rest
		}
	}
	if rest, ok := strings.CutPrefix(key, "param:"); ok {
		return "param " + rest
	}
	if r.Disp != "" {
		return r.Disp
	}
	return key
}

// qualifyRef pins unsubstituted parameter refs to their function so they
// never collide across functions in the package graph.
func qualifyRef(ref LockRef, fnKey string) LockRef {
	if i, ok := ref.isParam(); ok {
		ref.Key = fmt.Sprintf("param:%s:%d", fnKey, i)
	}
	return ref
}

func runLockOrder(pass *Pass) {
	m := pass.Model
	type edgeKey struct{ from, to string }
	edges := map[edgeKey]*lockEdge{}
	addEdge := func(from, to LockRef, pos token.Pos, fn string, path []string) {
		if from.Key == to.Key {
			return
		}
		k := edgeKey{from.Key, to.Key}
		if edges[k] == nil {
			edges[k] = &lockEdge{from: from, to: to, pos: pos, fn: fn, path: path}
		}
	}

	var fnKeys []string
	for k := range m.events {
		fnKeys = append(fnKeys, k)
	}
	sort.Strings(fnKeys)
	for _, fnKey := range fnKeys {
		replayHeld(m, fnKey, addEdge)
	}

	// Assemble the graph with sorted adjacency for deterministic cycle
	// extraction.
	adj := map[string][]string{}
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}

	for _, cycle := range findCycles(adj) {
		// Render the cycle's edges in order; the finding anchors at the
		// first edge's acquisition site.
		var parts, names []string
		var first *lockEdge
		for i := range cycle {
			e := edges[edgeKey{cycle[i], cycle[(i+1)%len(cycle)]}]
			if e == nil {
				continue
			}
			if first == nil {
				first = e
			}
			names = append(names, lockDisp(e.from))
			parts = append(parts, e.describe(pass.Pkg.Fset))
		}
		if first == nil {
			continue
		}
		names = append(names, names[0])
		pass.reportf(first.pos, "potential cyclic wait: %s (%s)",
			strings.Join(names, " → "), strings.Join(parts, "; "))
	}
}

// replayHeld replays one function's direct event stream with a held
// stack, emitting order edges for direct acquisitions and for everything
// a callee's summary says it may acquire.
func replayHeld(m *Model, fnKey string, addEdge func(from, to LockRef, pos token.Pos, fn string, path []string)) {
	events := m.events[fnKey]
	var held []LockRef
	popMatch := func(key string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].Key == key {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	for _, ev := range events {
		switch ev.kind {
		case evAcquire:
			ref := qualifyRef(ev.ref, fnKey)
			for _, h := range held {
				addEdge(h, ref, ev.pos, fnKey, nil)
			}
			held = append(held, ref)
		case evRelease:
			popMatch(qualifyRef(ev.ref, fnKey).Key)
		case evCall:
			callee := m.Summaries[ev.callKey]
			if callee == nil {
				continue
			}
			step := fmt.Sprintf("%s (%s)", ev.callKey, shortPos(m.Pkg.Fset, ev.pos))
			for _, a := range callee.Acquires {
				site, ok := substitute(a, ev, step)
				if !ok {
					continue
				}
				ref := qualifyRef(site.Ref, fnKey)
				for _, h := range held {
					addEdge(h, ref, ev.pos, fnKey, site.Path)
				}
			}
			for _, a := range callee.NetReleased {
				if site, ok := substitute(a, ev, step); ok {
					popMatch(qualifyRef(site.Ref, fnKey).Key)
				}
			}
			for _, a := range callee.NetHeld {
				if site, ok := substitute(a, ev, step); ok {
					held = append(held, qualifyRef(site.Ref, fnKey))
				}
			}
		}
	}
}

// findCycles returns one representative cycle per non-trivial strongly
// connected component, deterministically: components are discovered over
// sorted node order and each cycle starts at its component's smallest
// node, following smallest-neighbor-first edges.
func findCycles(adj map[string][]string) [][]string {
	var nodes []string
	seenNode := map[string]bool{}
	addNode := func(n string) {
		if !seenNode[n] {
			seenNode[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	// Tarjan's SCC, iterative over sorted roots.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sort.Strings(comp)
				sccs = append(sccs, comp)
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })

	var cycles [][]string
	for _, comp := range sccs {
		inComp := map[string]bool{}
		for _, n := range comp {
			inComp[n] = true
		}
		if cycle := extractCycle(adj, comp[0], inComp); cycle != nil {
			cycles = append(cycles, cycle)
		}
	}
	return cycles
}

// extractCycle finds a path start → … → start inside one component,
// preferring smaller node names at each step.
func extractCycle(adj map[string][]string, start string, inComp map[string]bool) []string {
	var path []string
	onPath := map[string]bool{}
	var dfs func(v string) bool
	dfs = func(v string) bool {
		path = append(path, v)
		onPath[v] = true
		for _, w := range adj[v] {
			if !inComp[w] {
				continue
			}
			if w == start && len(path) > 1 {
				return true
			}
			if !onPath[w] {
				if dfs(w) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		onPath[v] = false
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}
