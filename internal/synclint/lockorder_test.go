package synclint

import (
	"strings"
	"testing"
)

func TestLockOrderPositive(t *testing.T) {
	findings, _ := runOne(t, LockOrderAnalyzer, `
package fixture

type Accounts struct {
	ma *Monitor
	mb *Monitor
}

func (a *Accounts) Transfer(p *Proc) {
	a.ma.Enter(p)
	a.mb.Enter(p)
	a.mb.Exit(p)
	a.ma.Exit(p)
}

func (a *Accounts) Audit(p *Proc) {
	a.mb.Enter(p)
	a.ma.Enter(p)
	a.ma.Exit(p)
	a.mb.Exit(p)
}
`)
	wantFinding(t, findings, "potential cyclic wait")
	wantFinding(t, findings, "Accounts.ma")
	wantFinding(t, findings, "Accounts.mb")
	if len(findings) != 1 {
		t.Fatalf("want exactly one cycle finding, got %v", findings)
	}
}

func TestLockOrderNegative(t *testing.T) {
	findings, _ := runOne(t, LockOrderAnalyzer, `
package fixture

type Accounts struct {
	ma *Monitor
	mb *Monitor
}

// Both methods respect the same ma → mb order: no cycle.
func (a *Accounts) Transfer(p *Proc) {
	a.ma.Enter(p)
	a.mb.Enter(p)
	a.mb.Exit(p)
	a.ma.Exit(p)
}

func (a *Accounts) Audit(p *Proc) {
	a.ma.Enter(p)
	a.mb.Enter(p)
	a.mb.Exit(p)
	a.ma.Exit(p)
}
`)
	wantClean(t, findings)
}

func TestLockOrderInterprocedural(t *testing.T) {
	// The inversion is only visible through the helper: Fwd locks a then
	// hands b to lockIt, Rev the reverse. The parameter summary must be
	// instantiated with the caller's field at each call site.
	findings, _ := runOne(t, LockOrderAnalyzer, `
package fixture

type Pair struct {
	a *Mutex
	b *Mutex
}

func lockIt(p *Proc, m *Mutex) {
	m.Lock(p)
}

func (d *Pair) Fwd(p *Proc) {
	d.a.Lock(p)
	lockIt(p, d.b)
	d.b.Unlock(p)
	d.a.Unlock(p)
}

func (d *Pair) Rev(p *Proc) {
	d.b.Lock(p)
	lockIt(p, d.a)
	d.a.Unlock(p)
	d.b.Unlock(p)
}
`)
	wantFinding(t, findings, "potential cyclic wait")
	wantFinding(t, findings, "lockIt")
}

func TestLockOrderSelfEdgeIgnored(t *testing.T) {
	// Re-entering the same monitor is holdwait's finding, not a cycle.
	findings, _ := runOne(t, LockOrderAnalyzer, `
package fixture

type One struct {
	m *Monitor
}

func (o *One) Twice(p *Proc) {
	o.m.Enter(p)
	o.m.Enter(p)
	o.m.Exit(p)
	o.m.Exit(p)
}
`)
	wantClean(t, findings)
}

const broadcastFixtureDecl = `
package fixture

type Buf struct {
	m        *Monitor
	notEmpty *Condition
	n        int
}

func NewBuf() *Buf {
	b := &Buf{}
	b.m = New("buf")
	b.notEmpty = b.m.NewCondition("notEmpty")
	return b
}
`

func TestLostWakeupBroadcastIfWait(t *testing.T) {
	findings, _ := runOne(t, LostWakeupAnalyzer, broadcastFixtureDecl+`
func (b *Buf) Get(p *Proc) {
	b.m.Enter(p)
	if b.n == 0 {
		b.notEmpty.Wait(p)
	}
	b.n--
	b.m.Exit(p)
}

func (b *Buf) PutAll(p *Proc) {
	b.m.Enter(p)
	b.n += 10
	b.notEmpty.SignalAll(p)
	b.m.Exit(p)
}
`)
	wantFinding(t, findings, "broadcast with SignalAll")
}

func TestLostWakeupBroadcastLoopClean(t *testing.T) {
	// The guard is re-checked in a loop: broadcast is safe.
	findings, _ := runOne(t, LostWakeupAnalyzer, broadcastFixtureDecl+`
func (b *Buf) Get(p *Proc) {
	b.m.Enter(p)
	for b.n == 0 {
		b.notEmpty.Wait(p)
	}
	b.n--
	b.m.Exit(p)
}

func (b *Buf) PutAll(p *Proc) {
	b.m.Enter(p)
	b.n += 10
	b.notEmpty.SignalAll(p)
	b.m.Exit(p)
}
`)
	wantClean(t, findings)
}

func TestLostWakeupHoareSignalIfWaitClean(t *testing.T) {
	// Plain Signal hands the monitor straight to the waiter
	// (signal-and-urgent-wait), so an if-guarded wait is the paper's
	// own idiom and must not be flagged.
	findings, _ := runOne(t, LostWakeupAnalyzer, broadcastFixtureDecl+`
func (b *Buf) Get(p *Proc) {
	b.m.Enter(p)
	if b.n == 0 {
		b.notEmpty.Wait(p)
	}
	b.n--
	b.m.Exit(p)
}

func (b *Buf) Put(p *Proc) {
	b.m.Enter(p)
	b.n++
	b.notEmpty.Signal(p)
	b.m.Exit(p)
}
`)
	wantClean(t, findings)
}

func TestLostWakeupCheckThenPark(t *testing.T) {
	findings, _ := runOne(t, LostWakeupAnalyzer, broadcastFixtureDecl+`
func (b *Buf) BadGet(p *Proc) {
	if b.n == 0 {
		b.notEmpty.Wait(p)
	}
	b.n--
}
`)
	wantFinding(t, findings, "check-then-park")
}

func TestLostWakeupParkInsideOwnerClean(t *testing.T) {
	// The owning monitor is held at the wait — directly in Get, and
	// through the caller's Enter for the helper variant.
	findings, _ := runOne(t, LostWakeupAnalyzer, broadcastFixtureDecl+`
func (b *Buf) waitEmpty(p *Proc) {
	b.notEmpty.Wait(p)
}

func (b *Buf) Get(p *Proc) {
	b.m.Enter(p)
	if b.n == 0 {
		b.waitEmpty(p)
	}
	b.n--
	b.m.Exit(p)
}
`)
	wantClean(t, findings)
}

func TestAllowRequiresReason(t *testing.T) {
	// A reasoned allow (colon form) suppresses silently; a bare allow
	// suppresses but is itself reported.
	findings, suppressed := runOne(t, HoldWaitAnalyzer, `
package fixture

func Reasoned(p *Proc, outer, inner *Monitor) {
	outer.Enter(p)
	//synclint:allow holdwait: nesting is the demo
	inner.Enter(p)
	inner.Exit(p)
	outer.Exit(p)
}

func Bare(p *Proc, outer, inner *Monitor) {
	outer.Enter(p)
	//synclint:allow holdwait
	inner.Enter(p)
	inner.Exit(p)
	outer.Exit(p)
}
`)
	if suppressed != 2 {
		t.Fatalf("want both findings suppressed, got %d", suppressed)
	}
	wantFinding(t, findings, "lacks a reason")
	for _, f := range findings {
		if f.Analyzer != "allow" {
			t.Fatalf("unexpected non-allow finding %v", f)
		}
		if !strings.Contains(f.Message, "holdwait") {
			t.Fatalf("allow finding should name the suppressed analyzer: %v", f)
		}
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly one bare-allow finding, got %v", findings)
	}
}

func TestRunAllIgnoresAllows(t *testing.T) {
	pkg, err := LoadSource("fixture", map[string]string{"f.go": `
package fixture

func Allowed(p *Proc, outer, inner *Monitor) {
	outer.Enter(p)
	//synclint:allow holdwait: annotated on purpose
	inner.Enter(p)
	inner.Exit(p)
	outer.Exit(p)
}
`})
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	findings := RunAll(pkg, []*Analyzer{HoldWaitAnalyzer})
	wantFinding(t, findings, "while") // the raw holdwait finding is visible
}
