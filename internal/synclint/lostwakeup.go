package synclint

import (
	"go/ast"
	"sort"
	"strings"
)

// LostWakeupAnalyzer flags wait-side lost-wakeup hazards, complementing
// signalstate's signal-side hygiene. Two patterns:
//
//  1. Broadcast if-wait. Under Hoare signal-and-urgent-wait semantics a
//     plain Signal hands the monitor directly to the one waiter it
//     wakes, so `if !ok { c.Wait(p) }` is correct — the guard holds by
//     the signaller's invariant when the waiter resumes. SignalAll has
//     no such contract: it drains the condition, and every waiter after
//     the first re-acquires the monitor later, against state the
//     earlier ones may have consumed. A wait on a condition that is
//     broadcast anywhere in the package must therefore re-check its
//     guard in a loop; an if-guarded wait with no enclosing loop is a
//     lost wakeup waiting to happen.
//
//  2. Check-then-park window. A condition wait (or queue enqueue, crowd
//     join) reached while its owning monitor/serializer is not held:
//     the guard check and the park are not atomic, so the wakeup can
//     fire in the window between them and be lost. Held context is the
//     interprocedural summary replay, so an Enter in the caller covers
//     a wait in a helper; the check runs on call-graph roots, where the
//     full context is visible.
var LostWakeupAnalyzer = &Analyzer{
	Name: "lostwakeup",
	Doc:  "if-guarded wait on a broadcast condition, or a park outside its owning monitor",
	run:  runLostWakeup,
}

func runLostWakeup(pass *Pass) {
	m := pass.Model

	var fnKeys []string
	for k, fn := range m.Funcs {
		if fn.Decl.Body != nil {
			fnKeys = append(fnKeys, k)
		}
	}
	sort.Strings(fnKeys)

	// Pass 1: conditions broadcast anywhere in the package, by lock key.
	broadcast := map[string]bool{}
	for _, key := range fnKeys {
		fn := m.Funcs[key]
		r := newRefResolver(m, fn)
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "SignalAll" {
				return true
			}
			op := classifyCall(call)
			if op.Class != OpSignal || !m.isMechOp(op, fn) {
				return true
			}
			if ref := r.ref(op.Recv); ref.valid() {
				broadcast[ref.Key] = true
			}
			return true
		})
	}

	// Pass 2: if-guarded waits on broadcast conditions.
	for _, key := range fnKeys {
		fn := m.Funcs[key]
		r := newRefResolver(m, fn)
		var inIf, inLoop int
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			switch x := n.(type) {
			case nil:
				return
			case *ast.IfStmt:
				walk(x.Init)
				walk(x.Cond)
				inIf++
				walk(x.Body)
				inIf--
				walk(x.Else)
				return
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop++
				defer func() { inLoop-- }()
			case *ast.CallExpr:
				op := classifyCall(x)
				if op.Class == OpWait && m.isMechOp(op, fn) && inIf > 0 && inLoop == 0 {
					if ref := r.ref(op.Recv); ref.valid() && broadcast[ref.Key] {
						pass.reportf(x.Pos(),
							"%s waits on %s under an 'if' but the condition is broadcast with SignalAll — re-check the guard in a loop",
							key, ref.Disp)
					}
				}
			}
			for _, c := range childNodes(n) {
				walk(c)
			}
		}
		walk(fn.Decl.Body)
	}

	// Pass 3: parks outside the owning monitor, checked at call-graph
	// roots where the full held context is visible.
	isCallee := map[string]bool{}
	for _, events := range m.events {
		for _, ev := range events {
			if ev.kind == evCall {
				isCallee[ev.callKey] = true
			}
		}
	}
	for _, fnKey := range fnKeys {
		if isCallee[fnKey] {
			continue
		}
		checkParkContext(pass, fnKey)
	}
}

// ownerKey resolves the owning lock of a component ref ("field:T.cond" →
// "field:T.mon" via the struct model), or "" when unknown.
func (m *Model) ownerKey(ref LockRef) string {
	rest, ok := strings.CutPrefix(ref.Key, "field:")
	if !ok {
		return ""
	}
	typ, field, ok := strings.Cut(rest, ".")
	if !ok {
		return ""
	}
	si := m.Structs[typ]
	if si == nil {
		return ""
	}
	fi := si.Fields[field]
	if fi == nil || fi.Owner == "" {
		return ""
	}
	return "field:" + typ + "." + fi.Owner
}

// checkParkContext replays one root function's events with a held stack
// (mirroring the lockorder replay) and reports parks whose owning lock
// is not held at the park point.
func checkParkContext(pass *Pass, fnKey string) {
	m := pass.Model
	var held []LockRef
	heldKey := func(key string) bool {
		for _, h := range held {
			if h.Key == key {
				return true
			}
		}
		return false
	}
	popMatch := func(key string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].Key == key {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	report := func(site AcqSite) {
		// Only components with possession semantics: a condition wait,
		// queue enqueue, or crowd join presumes its owner is held. CSP
		// channels also record an owning Net, but channel ops are the
		// mechanism's whole protocol — there is nothing to hold.
		switch site.Ref.Class {
		case "condition", "queue", "crowd":
		default:
			return
		}
		owner := m.ownerKey(site.Ref)
		if owner == "" || heldKey(owner) {
			return
		}
		msg := "%s parks on %s without holding its owner %s — the guard check and the park are not atomic (check-then-park window)"
		if len(site.Path) > 0 {
			msg += " via " + strings.Join(site.Path, " → ")
		}
		pass.reportf(site.Pos, msg, fnKey, lockDisp(site.Ref), lockDisp(LockRef{Key: owner}))
	}
	for _, ev := range m.events[fnKey] {
		switch ev.kind {
		case evAcquire:
			held = append(held, qualifyRef(ev.ref, fnKey))
		case evRelease:
			popMatch(qualifyRef(ev.ref, fnKey).Key)
		case evPark:
			report(AcqSite{Ref: qualifyRef(ev.ref, fnKey), Pos: ev.pos})
		case evCall:
			callee := m.Summaries[ev.callKey]
			if callee == nil {
				continue
			}
			step := ev.callKey
			for _, a := range callee.Parks {
				if site, ok := substitute(a, ev, step); ok {
					site.Ref = qualifyRef(site.Ref, fnKey)
					site.Pos = ev.pos
					report(site)
				}
			}
			for _, a := range callee.NetReleased {
				if site, ok := substitute(a, ev, step); ok {
					popMatch(qualifyRef(site.Ref, fnKey).Key)
				}
			}
			for _, a := range callee.NetHeld {
				if site, ok := substitute(a, ev, step); ok {
					held = append(held, qualifyRef(site.Ref, fnKey))
				}
			}
		}
	}
}
