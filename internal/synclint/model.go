package synclint

import (
	"go/ast"
	"strings"
)

// The model is the shared, name-and-arity-driven view of a package that
// every analyzer consumes: which calls are mechanism operations, which
// struct fields are resource state versus synchronization machinery,
// which condition/queue/crowd belongs to which monitor/serializer, and
// which functions may block.

// OpClass classifies a call as a synchronization-mechanism operation.
type OpClass int

const (
	OpNone OpClass = iota
	// OpAcquire is an exclusion bracket open: monitor/serializer
	// Enter(p), semaphore.Mutex Lock(p).
	OpAcquire
	// OpRelease is the matching close: Exit(p), Unlock(p).
	OpRelease
	// OpSemP / OpSemV are counting-semaphore operations: P blocks and
	// takes a permit, V grants one (possibly from another process).
	OpSemP
	OpSemV
	// OpWait releases a held monitor and blocks: Wait(p), WaitRank(p, r).
	OpWait
	// OpEnqueue releases a held serializer and blocks on a guarantee:
	// Enqueue(p, g), EnqueueRank(p, r, g).
	OpEnqueue
	// OpSignal is a monitor signal: Signal(p), SignalAll(p).
	OpSignal
	// OpJoin is a serializer crowd join: Join(p, body) — possession is
	// released while body runs.
	OpJoin
	// OpDo is the bracketed-body convenience: Do(p, body) acquires, runs
	// body, releases.
	OpDo
	// OpExecute / OpAwait are CCR operations: Execute(p, guard, body),
	// Await(p, guard).
	OpExecute
	OpAwait
	// OpExec runs an operation under a path expression: Exec(p, name, body).
	OpExec
	// OpChanOp is a blocking CSP operation: Send(p, v), Recv(p),
	// DoCall(p, ch, v), Select(p, cases).
	OpChanOp
	// OpSpawn creates a process: Spawn(name, fn), SpawnDaemon(name, fn).
	OpSpawn
	// OpRun starts the kernel: Run().
	OpRun
	// OpTraceEnter / OpTraceExit are trace emissions: Enter(p, op, arg),
	// Exit(p, op, arg).
	OpTraceEnter
	OpTraceExit
)

// Op is one classified call.
type Op struct {
	Class OpClass
	// Recv is the receiver expression (nil for package-level csp.Select,
	// whose channel set is in the arguments).
	Recv ast.Expr
	Call *ast.CallExpr
}

// Blocking reports whether the operation can block the calling process.
func (o Op) Blocking() bool {
	switch o.Class {
	case OpAcquire, OpSemP, OpWait, OpEnqueue, OpJoin, OpDo, OpExecute, OpAwait, OpExec, OpChanOp:
		return true
	}
	return false
}

func isIdent(e ast.Expr) bool {
	_, ok := e.(*ast.Ident)
	return ok
}

func isFuncArg(e ast.Expr) bool {
	switch e.(type) {
	case *ast.FuncLit, *ast.CallExpr:
		// A call in guard position is a guarantee factory (EmptyG(),
		// SizeG(), ...) returning a closure.
		return true
	}
	return false
}

// classifyCall recognizes mechanism operations by method name and arity —
// the substrate's vocabulary (see package doc).
func classifyCall(call *ast.CallExpr) Op {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Op{Class: OpNone, Call: call}
	}
	name, n := sel.Sel.Name, len(call.Args)
	op := Op{Class: OpNone, Recv: sel.X, Call: call}
	// Bracket ops take the running process as their single argument,
	// always an identifier here; this keeps os.Exit(1) and friends out.
	identArg := n == 1 && isIdent(call.Args[0])
	switch {
	case (name == "Enter" || name == "Lock") && identArg:
		op.Class = OpAcquire
	case (name == "Exit" || name == "Unlock") && identArg:
		op.Class = OpRelease
	case name == "Enter" && n == 3:
		op.Class = OpTraceEnter
	case name == "Exit" && n == 3:
		op.Class = OpTraceExit
	case name == "P" && n == 1:
		op.Class = OpSemP
	case name == "V" && n == 0:
		op.Class = OpSemV
	case name == "Wait" && n == 1, name == "WaitRank" && n == 2:
		op.Class = OpWait
	case name == "Enqueue" && n == 2 && isFuncArg(call.Args[1]),
		name == "EnqueueRank" && n == 3 && isFuncArg(call.Args[2]):
		op.Class = OpEnqueue
	case (name == "Signal" || name == "SignalAll") && n == 1:
		op.Class = OpSignal
	case name == "Join" && n == 2 && isFuncArg(call.Args[1]):
		op.Class = OpJoin
	case name == "Do" && n == 2 && isFuncArg(call.Args[1]):
		op.Class = OpDo
	case name == "Execute" && n == 3:
		op.Class = OpExecute
	case name == "Await" && n == 2 && isFuncArg(call.Args[1]):
		op.Class = OpAwait
	case name == "Exec" && n == 3:
		op.Class = OpExec
	case name == "Send" && n == 2, name == "Recv" && n == 1,
		name == "DoCall" && n == 3, name == "Select" && n == 2:
		op.Class = OpChanOp
	case (name == "Spawn" || name == "SpawnDaemon") && n == 2:
		op.Class = OpSpawn
	case name == "Run" && n == 0:
		op.Class = OpRun
	}
	return op
}

// closureArgs returns the FuncLit arguments of a mechanism operation that
// run under the mechanism's own protection (guards and bodies), and those
// that run with possession released (crowd bodies, spawned processes).
func closureArgs(op Op) (protected, released []*ast.FuncLit) {
	lit := func(i int) *ast.FuncLit {
		if i < len(op.Call.Args) {
			if l, ok := op.Call.Args[i].(*ast.FuncLit); ok {
				return l
			}
		}
		return nil
	}
	add := func(dst []*ast.FuncLit, l *ast.FuncLit) []*ast.FuncLit {
		if l != nil {
			return append(dst, l)
		}
		return dst
	}
	switch op.Class {
	case OpEnqueue:
		protected = add(protected, lit(len(op.Call.Args)-1))
	case OpDo:
		protected = add(protected, lit(1))
	case OpExecute:
		protected = add(protected, lit(1))
		protected = add(protected, lit(2))
	case OpAwait:
		protected = add(protected, lit(1))
	case OpExec:
		protected = add(protected, lit(2))
	case OpJoin:
		released = add(released, lit(1))
	case OpSpawn:
		released = add(released, lit(1))
	}
	return protected, released
}

// mechanismPackages are the synchronization substrate import paths; a
// field whose type comes from one of them is machinery, not resource
// state, and a package importing none of them is outside the discipline
// the escape analyzer checks.
var mechanismPackages = []string{
	"internal/monitor", "internal/serializer", "internal/semaphore",
	"internal/ccr", "internal/csp", "internal/pathexpr",
}

// FieldInfo describes one struct field.
type FieldInfo struct {
	Name string
	// State marks resource-state candidates: basic values, slices, maps,
	// arrays, and same-package struct values. Everything else — mechanism
	// types, channels, funcs, interfaces, cross-package pointers — is
	// machinery or configuration the escape analyzer ignores.
	State bool
	// Owner is, for condition/queue/crowd components, the name of the
	// sibling field holding the owning monitor/serializer.
	Owner string
	// TypeName is the rendered field type with pointers stripped.
	TypeName string
}

// StructInfo describes one package struct with embedded same-package
// structs flattened in.
type StructInfo struct {
	Name        string
	Fields      map[string]*FieldInfo
	ProcMethods int             // methods taking a *kernel.Proc
	Mutable     map[string]bool // state fields written in methods
}

// FuncInfo summarizes one declared function or method.
type FuncInfo struct {
	Name    string // "Name" or "Type.Name"
	Recv    string // receiver type name, "" for plain functions
	RecvVar string // receiver identifier
	Decl    *ast.FuncDecl
	Blocks  bool // may block on a mechanism, transitively
	Touches bool // performs mechanism operations, transitively
	calls   []string
}

// Model is the per-package view shared by the analyzers.
type Model struct {
	Pkg     *Package
	Structs map[string]*StructInfo
	Funcs   map[string]*FuncInfo
	// Types is the lenient go/types view (typed.go); always non-nil, but
	// possibly partial — consumers fall back to name/arity resolution
	// wherever an object did not resolve.
	Types *TypeInfo
	// Summaries are the interprocedural acquire/park summaries
	// (summary.go), keyed like Funcs.
	Summaries map[string]*FuncSummary
	// events are the per-function direct event streams the summaries are
	// folded from; the lockorder walk replays them with a held stack.
	events map[string][]summaryEvent
	// UsesMechanisms: the package imports at least one substrate package.
	UsesMechanisms bool
	// constructorResults maps function names to the struct they return
	// ("NewDisk" -> "Disk"), for receiver-type inference on locals.
	constructorResults map[string]string
}

func typeText(e ast.Expr) string {
	for {
		if star, ok := e.(*ast.StarExpr); ok {
			e = star.X
			continue
		}
		break
	}
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base, ok := x.X.(*ast.Ident); ok {
			return base.Name + "." + x.Sel.Name
		}
	}
	return ""
}

func isProcType(e ast.Expr) bool {
	t := typeText(e)
	return t == "kernel.Proc" || t == "Proc"
}

func buildModel(pkg *Package) *Model {
	m := &Model{
		Pkg:                pkg,
		Structs:            map[string]*StructInfo{},
		Funcs:              map[string]*FuncInfo{},
		constructorResults: map[string]string{},
	}
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			for _, mp := range mechanismPackages {
				if strings.Contains(imp.Path.Value, mp) {
					m.UsesMechanisms = true
				}
			}
		}
	}
	m.Types = typecheck(pkg)
	m.collectStructs(pkg)
	m.collectFuncs(pkg)
	m.collectComponents(pkg)
	m.collectMutability()
	m.summarize()
	m.Summaries = buildSummaries(m)
	return m
}

func (m *Model) collectStructs(pkg *Package) {
	raw := map[string]*ast.StructType{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					raw[ts.Name.Name] = st
				}
			}
		}
	}
	// Memoized so an embedding struct shares the embedded struct's
	// *FieldInfo values: component ownership learned from the embedded
	// type's constructor is then visible through the outer type too.
	cache := map[string]map[string]*FieldInfo{}
	var fieldsOf func(name string, seen map[string]bool) map[string]*FieldInfo
	fieldsOf = func(name string, seen map[string]bool) map[string]*FieldInfo {
		if c, ok := cache[name]; ok {
			return c
		}
		out := map[string]*FieldInfo{}
		st, ok := raw[name]
		if !ok || seen[name] {
			return out
		}
		seen[name] = true
		for _, f := range st.Fields.List {
			tname := typeText(f.Type)
			if len(f.Names) == 0 {
				// Embedded: flatten same-package structs so promoted
				// state fields are attributed to the outer type.
				if _, isLocal := raw[tname]; isLocal {
					for k, v := range fieldsOf(tname, seen) {
						out[k] = v
					}
				}
				continue
			}
			state := false
			switch t := f.Type.(type) {
			case *ast.Ident:
				// Basic type or same-package named type; a same-package
				// struct VALUE is state, a basic value is state.
				state = true
			case *ast.ArrayType, *ast.MapType:
				state = true
			case *ast.StructType:
				state = true
			case *ast.StarExpr:
				// Pointer to a same-package struct counts as state only
				// if that struct is itself plain data; keep it out — the
				// repo's solutions never share resource state through
				// local pointers.
				_ = t
			}
			for _, id := range f.Names {
				out[id.Name] = &FieldInfo{Name: id.Name, State: state, TypeName: tname}
			}
		}
		cache[name] = out
		return out
	}
	for name := range raw {
		m.Structs[name] = &StructInfo{
			Name:    name,
			Fields:  fieldsOf(name, map[string]bool{}),
			Mutable: map[string]bool{},
		}
	}
}

func (m *Model) collectFuncs(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			info := &FuncInfo{Name: fn.Name.Name, Decl: fn}
			if fn.Recv != nil && len(fn.Recv.List) == 1 {
				info.Recv = typeText(fn.Recv.List[0].Type)
				if len(fn.Recv.List[0].Names) == 1 {
					info.RecvVar = fn.Recv.List[0].Names[0].Name
				}
				info.Name = info.Recv + "." + fn.Name.Name
				if si := m.Structs[info.Recv]; si != nil && fn.Type.Params != nil {
					for _, p := range fn.Type.Params.List {
						if star, ok := p.Type.(*ast.StarExpr); ok && isProcType(star) {
							si.ProcMethods++
						}
					}
				}
			} else if fn.Type.Results != nil {
				for _, r := range fn.Type.Results.List {
					if si := m.Structs[typeText(r.Type)]; si != nil {
						m.constructorResults[fn.Name.Name] = si.Name
					}
				}
			}
			m.Funcs[info.Name] = info
		}
	}
}

// collectComponents learns which condition/queue/crowd field belongs to
// which monitor/serializer field by scanning constructor bindings:
//
//	m := monitor.New("bb")
//	return &BoundedBuffer{m: m, notFull: m.NewCondition("notfull")}
func (m *Model) collectComponents(pkg *Package) {
	componentCtor := func(e ast.Expr) (owner ast.Expr, ok bool) {
		call, isCall := e.(*ast.CallExpr)
		if !isCall {
			return nil, false
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			return nil, false
		}
		switch sel.Sel.Name {
		case "NewCondition", "NewQueue", "NewCrowd", "NewChan":
			return sel.X, true
		}
		return nil, false
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				si := m.Structs[typeText(x.Type)]
				if si == nil {
					return true
				}
				// First map fields bound to plain local idents, then
				// resolve component constructors against those locals.
				localField := map[string]string{}
				for _, el := range x.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if v, ok := kv.Value.(*ast.Ident); ok {
						localField[v.Name] = key.Name
					}
				}
				for _, el := range x.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if owner, ok := componentCtor(kv.Value); ok {
						if ownerID, ok := owner.(*ast.Ident); ok {
							if fi := si.Fields[key.Name]; fi != nil {
								fi.Owner = localField[ownerID.Name]
							}
						}
					}
				}
			case *ast.AssignStmt:
				// d.turn = d.m.NewCondition(...) style: both sides are
				// fields of the same struct value.
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					call, ok := x.Rhs[i].(*ast.CallExpr)
					if !ok {
						continue
					}
					owner, isComponent := componentCtor(call)
					if !isComponent {
						continue
					}
					ownerSel, ok := owner.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					base, ownerBase := baseIdent(lhs), baseIdent(ownerSel)
					if base == nil || ownerBase == nil || base.Name != ownerBase.Name {
						continue
					}
					for _, si := range m.Structs {
						if fi := si.Fields[sel.Sel.Name]; fi != nil && si.Fields[ownerSel.Sel.Name] != nil {
							fi.Owner = ownerSel.Sel.Name
						}
					}
				}
			}
			return true
		})
	}
}

// collectMutability marks state fields written inside methods (writes in
// constructors are initialization, not shared mutation).
func (m *Model) collectMutability() {
	for _, fi := range m.Funcs {
		if fi.Recv == "" || fi.Decl.Body == nil {
			continue
		}
		si := m.Structs[fi.Recv]
		if si == nil {
			continue
		}
		recv := fi.RecvVar
		mark := func(e ast.Expr) {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok || base.Name != recv {
				return
			}
			if f := si.Fields[sel.Sel.Name]; f != nil && f.State {
				si.Mutable[sel.Sel.Name] = true
			}
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(x.X)
			}
			return true
		})
	}
}

// summarize computes transitive Blocks/Touches facts over the package
// call graph (method calls resolved by receiver/field/constructor shape).
func (m *Model) summarize() {
	for _, fi := range m.Funcs {
		if fi.Decl.Body == nil {
			continue
		}
		localTypes := m.localTypes(fi)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			op := classifyCall(call)
			if !m.isMechOp(op, fi) {
				// Typed veto: the receiver's type is known and is not a
				// substrate type, so the name/arity match was spurious.
				op = Op{Class: OpNone, Call: call}
			}
			switch op.Class {
			case OpNone:
				if key := m.resolveCall(fi, localTypes, call); key != "" {
					fi.calls = append(fi.calls, key)
				}
			case OpSpawn, OpRun, OpTraceEnter, OpTraceExit:
				// Kernel and trace operations are not mechanism facts.
			default:
				fi.Touches = true
				if op.Blocking() {
					fi.Blocks = true
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range m.Funcs {
			for _, callee := range fi.calls {
				c := m.Funcs[callee]
				if c == nil {
					continue
				}
				if c.Blocks && !fi.Blocks {
					fi.Blocks = true
					changed = true
				}
				if c.Touches && !fi.Touches {
					fi.Touches = true
					changed = true
				}
			}
		}
	}
}

// localTypes infers struct types of local variables bound to constructor
// calls (x := NewDisk(...)).
func (m *Model) localTypes(fi *FuncInfo) map[string]string {
	out := map[string]string{}
	if fi.Decl.Body == nil {
		return out
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok {
					if s := m.constructorResults[fn.Name]; s != "" {
						out[id.Name] = s
					}
				}
			}
		}
		return true
	})
	return out
}

// resolveCall maps a call expression to a FuncInfo key, or "". Typed
// resolution goes first — it sees through aliasing and differently named
// receivers — with the PR 2 syntactic inference as the fallback.
func (m *Model) resolveCall(fi *FuncInfo, localTypes map[string]string, call *ast.CallExpr) string {
	if key := m.resolveCallTyped(call); key != "" {
		return key
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if m.Funcs[fun.Name] != nil {
			return fun.Name
		}
	case *ast.SelectorExpr:
		switch x := fun.X.(type) {
		case *ast.Ident:
			// r.M() on the receiver, or v.M() on a constructor-typed local.
			if fi.Recv != "" && x.Name == fi.RecvVar {
				return fi.Recv + "." + fun.Sel.Name
			}
			if t := localTypes[x.Name]; t != "" {
				return t + "." + fun.Sel.Name
			}
		case *ast.SelectorExpr:
			// r.f.M() on a same-package-typed field.
			if base, ok := x.X.(*ast.Ident); ok && fi.Recv != "" && base.Name == fi.RecvVar {
				if si := m.Structs[fi.Recv]; si != nil {
					if f := si.Fields[x.Sel.Name]; f != nil && m.Structs[f.TypeName] != nil {
						return f.TypeName + "." + fun.Sel.Name
					}
				}
			}
		}
	}
	return ""
}
