package synclint

import (
	"go/ast"
)

// SignalStateAnalyzer checks Hoare-signal hygiene: a Signal (or
// SignalAll) inside a critical section should follow a change to the
// state its waiters' guards re-check — otherwise the signalled process
// wakes, re-evaluates its guard against unchanged state, and the signal
// was at best a no-op and at worst hides a lost-wakeup bug. A Wait in
// the same section exempts the signal: waking after a wait and passing
// the condition on (the cascade in the alarm-clock solution) is the
// signal-propagation idiom, where the state change happened in the
// signalling chain's origin.
var SignalStateAnalyzer = &Analyzer{
	Name: "signalstate",
	Doc:  "Signal with no write to guard-referenced state in the same critical section",
	run:  runSignalState,
}

type signalRegion struct {
	key      string
	hasWrite bool
	hasWait  bool
}

func runSignalState(pass *Pass) {
	forEachFrame(pass.Pkg, func(fn *frame) {
		var regions []*signalRegion
		markWrite := func() {
			for _, r := range regions {
				r.hasWrite = true
			}
		}
		markWait := func() {
			for _, r := range regions {
				r.hasWait = true
			}
		}
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			switch x := n.(type) {
			case nil:
				return
			case *ast.FuncLit:
				// Separate frame; forEachFrame visits it.
				return
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					markWrite()
					break
				}
			case *ast.IncDecStmt:
				markWrite()
			case *ast.CallExpr:
				op := classifyCall(x)
				switch op.Class {
				case OpAcquire:
					for _, c := range childNodes(n) {
						walk(c)
					}
					regions = append(regions, &signalRegion{key: exprText(pass.Pkg.Fset, op.Recv)})
					return
				case OpRelease:
					key := exprText(pass.Pkg.Fset, op.Recv)
					for i := len(regions) - 1; i >= 0; i-- {
						if regions[i].key == key {
							regions = append(regions[:i], regions[i+1:]...)
							break
						}
					}
				case OpWait:
					markWait()
				case OpSignal:
					if len(regions) > 0 {
						top := regions[len(regions)-1]
						if !top.hasWrite && !top.hasWait {
							pass.reportf(x.Pos(), "signal of %s with no state change in the %s critical section (in %s)",
								exprText(pass.Pkg.Fset, op.Recv), top.key, fn.name)
						}
					}
				}
			}
			for _, c := range childNodes(n) {
				walk(c)
			}
		}
		for _, s := range fn.body.List {
			walk(s)
		}
	})
}
