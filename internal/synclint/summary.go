package synclint

// Interprocedural acquire/park summaries. Every declared function gets a
// summary of the synchronization objects it may acquire (exclusion
// brackets, split-semaphore P's, region/path entries) and the points at
// which it may park, transitively through same-package callees. Lock
// identities are canonical keys from the typed layer — a field object,
// a package-level variable, a parameter position — so the same monitor
// reached through differently spelled expressions is one node, and a
// helper that locks "whatever it is handed" (a parameter) is
// instantiated at each call site with the caller's actual lock.
//
// Summaries propagate to a fixed point over the package call graph, so a
// chain Request → lockPair → lockOne attributes lockOne's acquisition to
// Request with the full call path preserved for diagnostics. The
// lockorder and lostwakeup analyzers consume them; holdwait's per-
// function Blocks bit (model.go) is the coarse ancestor of this.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// LockRef identifies one synchronization object as canonically as the
// available information allows. Keys are prefixed by provenance:
//
//	field:<Type>.<field>   a struct field (typed or receiver-inferred)
//	global:<name>          a package-level variable
//	param:<i>              the i'th parameter of the summarized function
//	local:<fn>.<name>      a function-local binding
//	expr:<text>            fallback: the rendered expression
type LockRef struct {
	Key   string
	Class string // "monitor", "serializer", "mutex", "semaphore", "region", "path", ...
	Disp  string // human-readable spelling at the reference site
}

func (r LockRef) valid() bool { return r.Key != "" }

// isParam reports whether the ref is an unsubstituted parameter, and its
// index.
func (r LockRef) isParam() (int, bool) {
	rest, ok := strings.CutPrefix(r.Key, "param:")
	if !ok {
		return 0, false
	}
	i, err := strconv.Atoi(rest)
	return i, err == nil
}

// AcqSite is one (possibly transitive) acquisition or park performed by a
// function.
type AcqSite struct {
	Ref LockRef
	// Pos is the position of the operation itself (in the summarized
	// package).
	Pos token.Pos
	// Path is the call chain from the summarized function to the
	// operation, empty for direct operations; each element is rendered
	// "callee (file:line of the call)".
	Path []string
}

// FuncSummary is the interprocedural synchronization footprint of one
// declared function.
type FuncSummary struct {
	// Acquires lists locks the function may acquire at some point while
	// running (deduped by key, syntactic order).
	Acquires []AcqSite
	// Parks lists blocking non-bracket operations — condition waits,
	// queue enqueues, crowd joins, channel operations — the function may
	// reach.
	Parks []AcqSite
	// NetHeld lists locks still held when the function returns on its
	// straight-line path (the `lock` half of a lock/unlock helper pair).
	NetHeld []AcqSite
	// NetReleased lists locks released without a matching acquire (the
	// `unlock` half); callers pop these from their held context.
	NetReleased []AcqSite
}

// refResolver resolves lock expressions inside one function.
type refResolver struct {
	m          *Model
	fn         *FuncInfo
	fnKey      string
	paramIdx   map[string]int       // by name (untyped fallback)
	paramObj   map[types.Object]int // by object (typed)
	localTypes map[string]string
}

func newRefResolver(m *Model, fn *FuncInfo) *refResolver {
	r := &refResolver{
		m:        m,
		fn:       fn,
		fnKey:    fn.Name,
		paramIdx: map[string]int{},
		paramObj: map[types.Object]int{},
	}
	r.localTypes = m.localTypes(fn)
	if fn.Decl.Type.Params != nil {
		i := 0
		for _, f := range fn.Decl.Type.Params.List {
			for _, id := range f.Names {
				r.paramIdx[id.Name] = i
				if m.Types != nil && m.Types.Info != nil {
					if obj := m.Types.Info.Defs[id]; obj != nil {
						r.paramObj[obj] = i
					}
				}
				i++
			}
		}
	}
	return r
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ref resolves e to a lock identity, typed first, syntactic second.
func (r *refResolver) ref(e ast.Expr) LockRef {
	if e == nil {
		return LockRef{}
	}
	e = unparen(e)
	out := LockRef{
		Disp:  exprText(r.m.Pkg.Fset, e),
		Class: r.m.mechClassOf(e, r.fn),
	}
	if key := r.typedKey(e); key != "" {
		out.Key = key
		return out
	}
	out.Key = r.syntacticKey(e)
	return out
}

func (r *refResolver) typedKey(e ast.Expr) string {
	ti := r.m.Types
	if ti == nil || ti.Info == nil {
		return ""
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel := ti.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			if n := namedOf(sel.Recv()); n != nil {
				return "field:" + n.Obj().Name() + "." + sel.Obj().Name()
			}
		}
		// Qualified package-level variable (pkg.Var).
		if obj, ok := ti.Info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return "global:" + obj.Name()
		}
	case *ast.Ident:
		obj, ok := ti.Info.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		if i, isParam := r.paramObj[obj]; isParam {
			return "param:" + strconv.Itoa(i)
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return "global:" + obj.Name()
		}
		return "local:" + r.fnKey + "." + obj.Name()
	}
	return ""
}

func (r *refResolver) syntacticKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if base, ok := x.X.(*ast.Ident); ok {
			if si := r.m.structOfIdent(base, r.fn); si != nil {
				if si.Fields[x.Sel.Name] != nil {
					return "field:" + si.Name + "." + x.Sel.Name
				}
			}
		}
	case *ast.Ident:
		if i, ok := r.paramIdx[x.Name]; ok {
			return "param:" + strconv.Itoa(i)
		}
		return "local:" + r.fnKey + "." + x.Name
	}
	return "expr:" + exprText(r.m.Pkg.Fset, e)
}

// summaryEvent is one direct operation or call site found in a body.
type summaryEvent struct {
	kind    int // evAcquire, evPark, evCall
	ref     LockRef
	pos     token.Pos
	callKey string    // evCall: resolved callee
	argRefs []LockRef // evCall: lock refs of the arguments
}

const (
	evAcquire = iota
	evRelease
	evPark
	evCall
)

// acquireLike classifies ops that take possession of a synchronization
// object until an explicit release: exclusion brackets and the P half of
// a split semaphore.
func acquireLike(c OpClass) bool {
	switch c {
	case OpAcquire, OpSemP:
		return true
	}
	return false
}

// bracketedBody classifies ops that acquire, run a closure argument, and
// release on their own: Do, CCR Execute, path Exec.
func bracketedBody(c OpClass) bool {
	switch c {
	case OpDo, OpExecute, OpExec:
		return true
	}
	return false
}

// releaseLike classifies explicit releases: Exit/Unlock and the V half
// of a split semaphore.
func releaseLike(c OpClass) bool {
	switch c {
	case OpRelease, OpSemV:
		return true
	}
	return false
}

// parkLike classifies blocking waits that do not take possession.
func parkLike(c OpClass) bool {
	switch c {
	case OpWait, OpEnqueue, OpJoin, OpAwait, OpChanOp:
		return true
	}
	return false
}

func defaultClass(c OpClass) string {
	switch c {
	case OpSemP:
		return "semaphore"
	case OpExecute, OpAwait:
		return "region"
	case OpExec:
		return "path"
	case OpWait:
		return "condition"
	case OpEnqueue:
		return "queue"
	case OpJoin:
		return "crowd"
	case OpChanOp:
		return "channel"
	}
	return "lock"
}

// collectEvents walks one function body (closures inlined, except bodies
// that run in another process) and returns its direct events in
// syntactic order.
func collectEvents(m *Model, fn *FuncInfo) []summaryEvent {
	var events []summaryEvent
	r := newRefResolver(m, fn)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.CallExpr:
			op := classifyCall(x)
			if !m.isMechOp(op, fn) {
				op = Op{Class: OpNone, Call: x}
			}
			mechRef := func() LockRef {
				ref := r.ref(op.Recv)
				if ref.Class == "" {
					ref.Class = defaultClass(op.Class)
				}
				return ref
			}
			switch {
			case op.Class == OpSpawn:
				// The spawned body runs in another process; its footprint
				// is not this function's. Walk non-closure args only.
				for _, a := range x.Args {
					if _, ok := a.(*ast.FuncLit); !ok {
						walk(a)
					}
				}
				return
			case acquireLike(op.Class):
				if ref := mechRef(); ref.valid() {
					events = append(events, summaryEvent{kind: evAcquire, ref: ref, pos: x.Pos()})
				}
			case releaseLike(op.Class):
				if ref := mechRef(); ref.valid() {
					events = append(events, summaryEvent{kind: evRelease, ref: ref, pos: x.Pos()})
				}
			case bracketedBody(op.Class):
				// Acquire, walk the protected body, release — the op
				// brackets its closure argument by construction.
				ref := mechRef()
				if ref.valid() {
					events = append(events, summaryEvent{kind: evAcquire, ref: ref, pos: x.Pos()})
				}
				for _, a := range x.Args {
					walk(a)
				}
				if ref.valid() {
					events = append(events, summaryEvent{kind: evRelease, ref: ref, pos: x.End()})
				}
				return
			case parkLike(op.Class):
				if ref := mechRef(); ref.valid() {
					events = append(events, summaryEvent{kind: evPark, ref: ref, pos: x.Pos()})
				}
			case op.Class == OpNone:
				if key := m.resolveCall(fn, r.localTypes, x); key != "" {
					ev := summaryEvent{kind: evCall, callKey: key, pos: x.Pos()}
					for _, a := range x.Args {
						ev.argRefs = append(ev.argRefs, r.ref(a))
					}
					events = append(events, ev)
				}
			}
		}
		for _, c := range childNodes(n) {
			walk(c)
		}
	}
	walk(fn.Decl.Body)
	return events
}

// buildSummaries computes the package's summaries to a fixed point and
// stashes the per-function direct event streams on the model for the
// lockorder walk.
func buildSummaries(m *Model) map[string]*FuncSummary {
	m.events = map[string][]summaryEvent{}
	for key, fn := range m.Funcs {
		if fn.Decl.Body == nil {
			continue
		}
		m.events[key] = collectEvents(m, fn)
	}
	sums := map[string]*FuncSummary{}
	for key := range m.events {
		sums[key] = &FuncSummary{}
	}
	// Fixed point: incorporate callee summaries with parameter
	// substitution until no summary grows. Bounded by the total number
	// of distinct (function, lock) pairs.
	for changed := true; changed; {
		changed = false
		for key, events := range m.events {
			s := summarizeEvents(m, events, sums)
			old := sums[key]
			if len(s.Acquires) != len(old.Acquires) || len(s.Parks) != len(old.Parks) ||
				len(s.NetHeld) != len(old.NetHeld) || len(s.NetReleased) != len(old.NetReleased) {
				changed = true
			}
			sums[key] = s
		}
	}
	return sums
}

// summarizeEvents folds one event stream into a summary, consulting the
// current summaries for call sites.
func summarizeEvents(m *Model, events []summaryEvent, sums map[string]*FuncSummary) *FuncSummary {
	s := &FuncSummary{}
	var stack []AcqSite // net-held simulation
	popMatch := func(key string) bool {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].Ref.Key == key {
				stack = append(stack[:i], stack[i+1:]...)
				return true
			}
		}
		return false
	}
	for _, ev := range events {
		switch ev.kind {
		case evAcquire:
			s.add(&s.Acquires, AcqSite{Ref: ev.ref, Pos: ev.pos})
			stack = append(stack, AcqSite{Ref: ev.ref, Pos: ev.pos})
		case evRelease:
			if !popMatch(ev.ref.Key) {
				s.add(&s.NetReleased, AcqSite{Ref: ev.ref, Pos: ev.pos})
			}
		case evPark:
			s.add(&s.Parks, AcqSite{Ref: ev.ref, Pos: ev.pos})
		case evCall:
			callee := sums[ev.callKey]
			if callee == nil {
				continue
			}
			step := fmt.Sprintf("%s (%s)", ev.callKey, shortPos(m.Pkg.Fset, ev.pos))
			for _, a := range callee.Acquires {
				if site, ok := substitute(a, ev, step); ok {
					s.add(&s.Acquires, site)
				}
			}
			for _, a := range callee.Parks {
				if site, ok := substitute(a, ev, step); ok {
					s.add(&s.Parks, site)
				}
			}
			for _, a := range callee.NetReleased {
				if site, ok := substitute(a, ev, step); ok {
					if !popMatch(site.Ref.Key) {
						s.add(&s.NetReleased, site)
					}
				}
			}
			for _, a := range callee.NetHeld {
				if site, ok := substitute(a, ev, step); ok {
					site.Pos = ev.pos
					stack = append(stack, site)
				}
			}
		}
	}
	for _, h := range stack {
		s.add(&s.NetHeld, h)
	}
	return s
}

// add appends site unless a site with the same key is already recorded.
func (s *FuncSummary) add(dst *[]AcqSite, site AcqSite) {
	for _, have := range *dst {
		if have.Ref.Key == site.Ref.Key {
			return
		}
	}
	*dst = append(*dst, site)
}

// substitute maps one callee summary entry into the caller's frame:
// parameter refs are replaced by the caller's argument refs, and the
// call step is prepended to the path. Entries whose parameter argument
// is not a lock-shaped expression are dropped.
func substitute(site AcqSite, call summaryEvent, step string) (AcqSite, bool) {
	out := site
	out.Path = append([]string{step}, site.Path...)
	if i, ok := site.Ref.isParam(); ok {
		if i >= len(call.argRefs) || !call.argRefs[i].valid() {
			return out, false
		}
		arg := call.argRefs[i]
		out.Ref = LockRef{Key: arg.Key, Class: site.Ref.Class, Disp: arg.Disp}
		if arg.Class != "" {
			out.Ref.Class = arg.Class
		}
	}
	return out, true
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}
