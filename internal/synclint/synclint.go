// Package synclint statically checks the synchronization discipline this
// repository's solutions follow. The paper's modularity and ease-of-use
// criteria (§2, §5.2) are judgements about the shape of code — whether
// synchronization is encapsulated with the resource, whether a wait is
// reachable while an outer mechanism is held (the nested-monitor-call
// problem [18]) — so they can be derived mechanically from the AST, in
// the spirit of turning design rules into compiler passes.
//
// The framework is stdlib-only (go/ast, go/parser, go/token) and purely
// convention-driven: mechanism operations are recognized by method name
// and arity (Enter/Exit with one argument is a monitor or serializer
// bracket, P/V a semaphore, three-argument Enter/Exit a trace emission,
// and so on), which is exactly the vocabulary the kernel substrate
// defines. No type checking or module resolution is required, so the
// same analyzers run over on-disk packages and over the embedded
// solutions.Sources file system.
//
// Deliberate violations are suppressed with an allow-annotation:
//
//	//synclint:allow <analyzer>[,<analyzer>]: <reason>
//
// placed on the offending line, on the line above it, or in the doc
// comment of the enclosing function (covering the whole function). The
// analyzer list may be the word "all". A file-wide suppression uses
// //synclint:allow-file with the same syntax. The reason is mandatory:
// an allow without one still suppresses its target but is itself
// reported as an `allow` finding, so unexplained suppressions cannot
// accumulate silently.
package synclint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one discipline violation, keyed by source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Package is one parsed Go package (test files excluded).
type Package struct {
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
}

// LoadDir parses the non-test Go files of an on-disk directory.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && wantFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	return load(dir, names, func(name string) ([]byte, error) {
		return os.ReadFile(filepath.Join(dir, name))
	})
}

// LoadFS parses the non-test Go files of a directory inside an fs.FS —
// typically the solutions.Sources embed.
func LoadFS(fsys fs.FS, dir string) (*Package, error) {
	entries, err := fs.ReadDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && wantFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	return load(dir, names, func(name string) ([]byte, error) {
		return fs.ReadFile(fsys, path_join(dir, name))
	})
}

// LoadSource parses in-memory sources; used by the fixture tests.
func LoadSource(dir string, files map[string]string) (*Package, error) {
	var names []string
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	return load(dir, names, func(name string) ([]byte, error) {
		return []byte(files[name]), nil
	})
}

func wantFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

func path_join(dir, name string) string {
	if dir == "" || dir == "." {
		return name
	}
	return dir + "/" + name
}

func load(dir string, names []string, read func(string) ([]byte, error)) (*Package, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("synclint: no Go files in %s", dir)
	}
	sort.Strings(names)
	pkg := &Package{Dir: dir, Fset: token.NewFileSet()}
	for _, name := range names {
		src, err := read(name)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(pkg.Fset, path_join(dir, name), src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
		if pkg.Name == "" {
			pkg.Name = file.Name.Name
		}
	}
	return pkg, nil
}

// Analyzer is one discipline check.
type Analyzer struct {
	Name string
	Doc  string
	run  func(*Pass)
}

// Analyzers returns the full catalogue in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		BracketAnalyzer,
		HoldWaitAnalyzer,
		EscapeAnalyzer,
		SignalStateAnalyzer,
		KernelAPIAnalyzer,
		LockOrderAnalyzer,
		LostWakeupAnalyzer,
	}
}

// AnalyzerNames returns the catalogue's names.
func AnalyzerNames() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	return out
}

// Pass is one analyzer's run over one package.
type Pass struct {
	Pkg      *Package
	Model    *Model
	analyzer *Analyzer
	findings []Finding
}

func (p *Pass) reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to the package, drops findings covered by
// allow-annotations, and returns the remainder sorted by position —
// plus one `allow` finding per annotation that lacks a reason. The
// second result counts the suppressed findings.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, int) {
	model := buildModel(pkg)
	allow := collectAllows(pkg)
	var out []Finding
	suppressed := 0
	for _, a := range analyzers {
		for _, f := range runOnePass(pkg, model, a) {
			if allow.allows(a.Name, f.Pos) {
				suppressed++
				continue
			}
			out = append(out, f)
		}
	}
	// Bare allows are findings in their own right, and deliberately not
	// subject to suppression — a reason-less allow cannot excuse itself.
	out = append(out, allow.bare...)
	SortFindings(out)
	return out, suppressed
}

// RunAll applies the analyzers with allow-annotations ignored, returning
// every raw finding. The xcheck gate uses it to seed hunts from fixture
// sources whose findings are deliberately annotated so the repo's own
// lint stays clean.
func RunAll(pkg *Package, analyzers []*Analyzer) []Finding {
	model := buildModel(pkg)
	var out []Finding
	for _, a := range analyzers {
		out = append(out, runOnePass(pkg, model, a)...)
	}
	SortFindings(out)
	return out
}

func runOnePass(pkg *Package, model *Model, a *Analyzer) []Finding {
	pass := &Pass{Pkg: pkg, Model: model, analyzer: a}
	a.run(pass)
	return pass.findings
}

// SortFindings orders findings by file, line, column, analyzer — the
// deterministic order every front end (CLI JSON, eval tables, goldens)
// presents.
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// exprText renders an expression as compact source text; analyzers use it
// to key mechanism objects ("d.mutex", "m") without type information.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return fmt.Sprintf("<expr@%d>", e.Pos())
	}
	return buf.String()
}

// baseIdent returns the leftmost identifier of a selector chain, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// allowIndex records every //synclint:allow annotation in a package.
type allowIndex struct {
	// lines maps file -> line -> analyzer set ("all" covers everything).
	lines map[string]map[int]map[string]bool
	// ranges are function-granularity and file-granularity suppressions.
	ranges []allowRange
	// bare are findings for annotations that carried no reason.
	bare []Finding
}

type allowRange struct {
	file       string
	start, end int
	names      map[string]bool
}

// parseAllow splits an annotation into its analyzer names and reason:
//
//	//synclint:allow <names>: <reason>
//
// The legacy `-- reason` delimiter is still understood. An empty name
// list means "all"; an empty reason is the caller's cue to report the
// annotation itself.
func parseAllow(text, marker string) (names map[string]bool, reason string, ok bool) {
	// Directive comments only: the marker must open the comment
	// (`//synclint:allow ...`), so prose that merely mentions the
	// annotation never parses as one.
	rest, ok := strings.CutPrefix(text, "//"+marker)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != ':') {
		return nil, "", false
	}
	dash, colon := strings.Index(rest, "--"), strings.Index(rest, ":")
	switch {
	case colon >= 0 && (dash < 0 || colon < dash):
		rest, reason = rest[:colon], rest[colon+1:]
	case dash >= 0:
		rest, reason = rest[:dash], rest[dash+2:]
	}
	names = map[string]bool{}
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		names[f] = true
	}
	if len(names) == 0 {
		names["all"] = true
	}
	return names, strings.TrimSpace(reason), true
}

// noteAllow validates one annotation's reason, recording a finding for
// bare allows.
func (idx *allowIndex) noteAllow(pkg *Package, c *ast.Comment, names map[string]bool, reason string) {
	if reason != "" {
		return
	}
	var list []string
	for n := range names {
		list = append(list, n)
	}
	sort.Strings(list)
	idx.bare = append(idx.bare, Finding{
		Analyzer: "allow",
		Pos:      pkg.Fset.Position(c.Pos()),
		Message: fmt.Sprintf("suppression of %s lacks a reason — write //synclint:allow <analyzer>: <reason>",
			strings.Join(list, ",")),
	})
}

func collectAllows(pkg *Package) *allowIndex {
	idx := &allowIndex{lines: map[string]map[int]map[string]bool{}}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if names, reason, ok := parseAllow(c.Text, "synclint:allow-file"); ok {
					pos := pkg.Fset.Position(c.Pos())
					idx.ranges = append(idx.ranges, allowRange{file: pos.Filename, start: 0, end: 1 << 30, names: names})
					idx.noteAllow(pkg, c, names, reason)
					continue
				}
				names, reason, ok := parseAllow(c.Text, "synclint:allow")
				if !ok {
					continue
				}
				idx.noteAllow(pkg, c, names, reason)
				pos := pkg.Fset.Position(c.Pos())
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					idx.lines[pos.Filename] = byLine
				}
				// The annotation covers its own line and the next one, so
				// it works both trailing a statement and on its own line.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					for n := range names {
						byLine[line][n] = true
					}
				}
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				// The reason was already validated in the comment sweep
				// above; this loop only widens coverage to the function.
				if names, _, ok := parseAllow(c.Text, "synclint:allow"); ok {
					start := pkg.Fset.Position(fn.Pos())
					end := pkg.Fset.Position(fn.End())
					idx.ranges = append(idx.ranges, allowRange{file: start.Filename, start: start.Line, end: end.Line, names: names})
				}
			}
		}
	}
	return idx
}

func (idx *allowIndex) allows(analyzer string, pos token.Position) bool {
	if byLine := idx.lines[pos.Filename]; byLine != nil {
		if names := byLine[pos.Line]; names != nil && (names["all"] || names[analyzer]) {
			return true
		}
	}
	for _, r := range idx.ranges {
		if r.file == pos.Filename && pos.Line >= r.start && pos.Line <= r.end && (r.names["all"] || r.names[analyzer]) {
			return true
		}
	}
	return false
}
