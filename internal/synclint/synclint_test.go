package synclint

import (
	"strings"
	"testing"
)

// runOne parses a single-file fixture package and runs one analyzer.
func runOne(t *testing.T, analyzer *Analyzer, src string) ([]Finding, int) {
	t.Helper()
	pkg, err := LoadSource("fixture", map[string]string{"f.go": src})
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return Run(pkg, []*Analyzer{analyzer})
}

func wantFinding(t *testing.T, findings []Finding, substr string) {
	t.Helper()
	for _, f := range findings {
		if strings.Contains(f.Message, substr) {
			return
		}
	}
	t.Fatalf("no finding containing %q; got %v", substr, findings)
}

func wantClean(t *testing.T, findings []Finding) {
	t.Helper()
	if len(findings) != 0 {
		t.Fatalf("expected no findings, got %v", findings)
	}
}

func TestBracketPositive(t *testing.T) {
	findings, _ := runOne(t, BracketAnalyzer, `
package fixture

func Leaky(p *Proc, m *Monitor, urgent bool) {
	m.Enter(p)
	if urgent {
		return // exits with m still held
	}
	m.Exit(p)
}
`)
	wantFinding(t, findings, "left unbalanced at function exit")
}

func TestBracketNegative(t *testing.T) {
	findings, _ := runOne(t, BracketAnalyzer, `
package fixture

func Deferred(p *Proc, m *Monitor, urgent bool) {
	m.Enter(p)
	defer m.Exit(p)
	if urgent {
		return
	}
}

func Branches(p *Proc, m *Monitor, n int) {
	m.Enter(p)
	if n > 0 {
		n--
	} else {
		n++
	}
	m.Exit(p)
}

// Split-semaphore permit transfer is a legitimate idiom, not an
// imbalance: Deposit P's space and V's items, Remove the reverse.
func Deposit(p *Proc, space, items *Semaphore) {
	space.P(p)
	items.V()
}
`)
	wantClean(t, findings)
}

func TestBracketTracePairs(t *testing.T) {
	findings, _ := runOne(t, BracketAnalyzer, `
package fixture

func Unpaired(p *Proc, rec *Recorder, early bool) {
	rec.Enter(p, "read", 0)
	if early {
		return // missing rec.Exit emission
	}
	rec.Exit(p, "read", 0)
}
`)
	wantFinding(t, findings, "trace")
}

func TestHoldWaitPositive(t *testing.T) {
	findings, _ := runOne(t, HoldWaitAnalyzer, `
package fixture

func Nested(p *Proc, outer, inner *Monitor) {
	outer.Enter(p)
	inner.Enter(p) // nested-monitor hazard
	inner.Exit(p)
	outer.Exit(p)
}
`)
	wantFinding(t, findings, "acquired while outer is held")
}

func TestHoldWaitNegative(t *testing.T) {
	// A Wait on a condition of the HELD monitor releases that monitor by
	// construction — the intended use, not a hazard.
	findings, _ := runOne(t, HoldWaitAnalyzer, `
package fixture

func Consume(p *Proc, m *Monitor) {
	c := m.NewCondition("nonempty")
	m.Enter(p)
	c.Wait(p)
	m.Exit(p)
}
`)
	wantClean(t, findings)
}

func TestHoldWaitTransitive(t *testing.T) {
	// A helper that blocks, called with a bracket held, is the same
	// hazard one call deeper.
	findings, _ := runOne(t, HoldWaitAnalyzer, `
package fixture

func slowGet(p *Proc, inner *Monitor) {
	inner.Enter(p)
	inner.Exit(p)
}

func Outer(p *Proc, outer, inner *Monitor) {
	outer.Enter(p)
	slowGet(p, inner)
	outer.Exit(p)
}
`)
	wantFinding(t, findings, "call to slowGet may block")
}

const escapeFixture = `
package fixture

import (
	"example/internal/ccr"
	"example/internal/kernel"
	"example/internal/monitor"
)

// Counter guards its state by discipline but leaks a read outside the
// bracket: not mechanism-bound.
type Counter struct {
	m *monitor.Monitor
	n int
}

func (c *Counter) Inc(p *kernel.Proc) {
	c.m.Enter(p)
	c.n++
	c.m.Exit(p)
}

func (c *Counter) Peek(p *kernel.Proc) int {
	return c.n // escaped access
}

// Cell's state is only touched inside bodies the region itself runs:
// mechanism-bound, structurally.
type Cell struct {
	r *ccr.Region
	v int
}

func (c *Cell) Set(p *kernel.Proc, x int) {
	c.r.Execute(p, func() bool { return true }, func() { c.v = x })
}

func (c *Cell) Get(p *kernel.Proc) int {
	out := 0
	c.r.Execute(p, func() bool { return true }, func() { out = c.v })
	return out
}
`

func TestEscapePositiveAndNegative(t *testing.T) {
	findings, _ := runOne(t, EscapeAnalyzer, escapeFixture)
	wantFinding(t, findings, "Counter.n accessed outside any synchronization bracket in Counter.Peek")
	for _, f := range findings {
		if strings.Contains(f.Message, "Cell.") {
			t.Fatalf("structurally protected Cell access reported: %v", f)
		}
	}
}

func TestEscapeSummary(t *testing.T) {
	pkg, err := LoadSource("fixture", map[string]string{"f.go": escapeFixture})
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := AnalyzeEscape(pkg)
	if len(sum.Types) != 2 {
		t.Fatalf("want 2 analyzed types, got %+v", sum.Types)
	}
	byName := map[string]TypeEscape{}
	for _, te := range sum.Types {
		byName[te.Type] = te
	}
	if byName["Counter"].Bound() {
		t.Errorf("Counter should not be mechanism-bound: %+v", byName["Counter"])
	}
	if !byName["Cell"].Bound() {
		t.Errorf("Cell should be mechanism-bound: %+v", byName["Cell"])
	}
	if sum.Encapsulated() {
		t.Errorf("1 of 2 bound is not a majority; Encapsulated() = true")
	}
}

func TestEscapeSkipsMechanismFreePackages(t *testing.T) {
	pkg, err := LoadSource("fixture", map[string]string{"f.go": `
package fixture

type Plain struct{ n int }

func (p *Plain) Inc(q *Proc) { p.n++ }
`})
	if err != nil {
		t.Fatal(err)
	}
	sum, findings := AnalyzeEscape(pkg)
	if len(sum.Types) != 0 || len(findings) != 0 {
		t.Fatalf("package without mechanism imports should be vacuous, got %+v %v", sum, findings)
	}
}

func TestSignalStatePositive(t *testing.T) {
	findings, _ := runOne(t, SignalStateAnalyzer, `
package fixture

func Hollow(p *Proc, m *Monitor, c *Condition) {
	m.Enter(p)
	c.Signal(p) // nothing changed; waiters re-check unchanged state
	m.Exit(p)
}
`)
	wantFinding(t, findings, "no state change")
}

func TestSignalStateNegative(t *testing.T) {
	findings, _ := runOne(t, SignalStateAnalyzer, `
package fixture

func Produce(p *Proc, m *Monitor, c *Condition, buf *Buffer) {
	m.Enter(p)
	buf.count++
	c.Signal(p)
	m.Exit(p)
}

// The cascade idiom: waking from a Wait and passing the signal on is
// signal propagation, not a hollow signal.
func Cascade(p *Proc, m *Monitor, c *Condition) {
	m.Enter(p)
	c.Wait(p)
	c.Signal(p)
	m.Exit(p)
}
`)
	wantClean(t, findings)
}

func TestKernelAPIPositive(t *testing.T) {
	findings, _ := runOne(t, KernelAPIAnalyzer, `
package fixture

func CapturesProc(p *Proc, k *Kernel) {
	k.Spawn("child", func(q *Proc) {
		p.Yield() // p belongs to the spawning process
	})
}

func SpawnAfterRun(k *Kernel) {
	k.Spawn("early", func(p *Proc) {})
	k.Run()
	k.Spawn("late", func(p *Proc) {})
}
`)
	wantFinding(t, findings, "captures p")
	wantFinding(t, findings, "Spawn on k after k.Run() returned")
}

func TestKernelAPINegative(t *testing.T) {
	findings, _ := runOne(t, KernelAPIAnalyzer, `
package fixture

func OwnProc(p *Proc, k *Kernel) {
	k.Spawn("child", func(q *Proc) {
		q.Yield()
	})
	k.Run()
}

func FreshKernel(k *Kernel) {
	k.Run()
	k = NewKernel()
	k.Spawn("next", func(p *Proc) {})
	k.Run()
}
`)
	wantClean(t, findings)
}

// Reset revives a finished kernel for another Spawn/Run cycle — the run
// recycling idiom the exploration engine's pool depends on — and Close
// merely releases pooled workers, so neither may trip the post-Run check.
func TestKernelAPIResetAfterRun(t *testing.T) {
	findings, _ := runOne(t, KernelAPIAnalyzer, `
package fixture

func Recycled(k *Kernel) {
	for i := 0; i < 3; i++ {
		k.Spawn("worker", func(p *Proc) {})
		k.Run()
		k.Reset()
	}
	k.Close()
}

func ResetThenSpawn(k *Kernel) {
	k.Spawn("first", func(p *Proc) {})
	k.Run()
	k.Reset()
	k.Spawn("second", func(p *Proc) {})
	k.Run()
}
`)
	wantClean(t, findings)
}

// Reset clears the taint only for its own receiver: Spawn on a different
// kernel that already ran is still a finding.
func TestKernelAPIResetOtherKernel(t *testing.T) {
	findings, _ := runOne(t, KernelAPIAnalyzer, `
package fixture

func WrongKernelReset(k1, k2 *Kernel) {
	k1.Run()
	k2.Reset()
	k1.Spawn("late", func(p *Proc) {})
}
`)
	wantFinding(t, findings, "Spawn on k1 after k1.Run() returned")
}

func TestKernelAPINestedSpawnCapture(t *testing.T) {
	findings, _ := runOne(t, KernelAPIAnalyzer, `
package fixture

func Nested(k *Kernel) {
	k.Spawn("outer", func(p *Proc) {
		k.Spawn("inner", func(q *Proc) {
			p.Unpark(nil) // p is the outer body's process
		})
	})
}
`)
	wantFinding(t, findings, "captures p")
}

// SnapshotAt and Restore are between-runs operations: inside a spawned
// process body they race the very run they execute in.
func TestKernelAPISnapshotInsideSpawn(t *testing.T) {
	findings, _ := runOne(t, KernelAPIAnalyzer, `
package fixture

func SnapshotMidRun(k *Kernel) {
	k.Spawn("worker", func(p *Proc) {
		s, _ := k.SnapshotAt(3) // mid-run: the decision history is still being written
		k.Restore(s)
	})
	k.Run()
}
`)
	wantFinding(t, findings, "SnapshotAt inside a spawned process body")
	wantFinding(t, findings, "Restore inside a spawned process body")
}

func TestKernelAPISnapshotBetweenRuns(t *testing.T) {
	findings, _ := runOne(t, KernelAPIAnalyzer, `
package fixture

func SnapshotAfterRun(k *Kernel) {
	k.Spawn("worker", func(p *Proc) { p.Yield() })
	k.Run()
	s, _ := k.SnapshotAt(3)
	k.Reset()
	k.Restore(s)
	k.Spawn("worker", func(p *Proc) { p.Yield() })
	k.Run()
}
`)
	wantClean(t, findings)
}

func TestAllowAnnotations(t *testing.T) {
	// Line-level, function-level, and file-level suppressions.
	src := `
package fixture

func LineAllowed(p *Proc, outer, inner *Monitor) {
	outer.Enter(p)
	//synclint:allow holdwait -- deliberate naive demo
	inner.Enter(p)
	inner.Exit(p)
	outer.Exit(p)
}

// FuncAllowed demonstrates the hazard on purpose.
//
//synclint:allow holdwait -- the whole function is the demo
func FuncAllowed(p *Proc, outer, inner *Monitor) {
	outer.Enter(p)
	inner.Enter(p)
	inner.Exit(p)
	outer.Exit(p)
}
`
	findings, suppressed := runOne(t, HoldWaitAnalyzer, src)
	wantClean(t, findings)
	if suppressed != 2 {
		t.Fatalf("want 2 suppressed findings, got %d", suppressed)
	}

	// The annotation names a specific analyzer: others still fire.
	findings, _ = runOne(t, BracketAnalyzer, `
package fixture

func WrongName(p *Proc, m *Monitor) {
	//synclint:allow holdwait
	m.Enter(p)
}
`)
	wantFinding(t, findings, "left unbalanced")
}
