package synclint

// The typed layer resolves receivers and calls to go/types objects, so
// analyzers reason about *which* monitor or semaphore an operation
// touches instead of how its expression happens to be spelled. Two
// different renderings of the same field ("b.m" in one method, "buf.m"
// through a differently named receiver, or an alias local) collapse to
// one lock identity, and unrelated methods that merely share a name with
// the substrate vocabulary (an Enter on a game struct) stop classifying
// as mechanism operations.
//
// Type checking is deliberately lenient: the checker runs with a
// collecting error handler and a best-effort importer, so a package that
// does not fully type-check (fixture sources, embedded solution text
// analyzed outside the repo) still yields partial types.Info, and every
// consumer falls back to the name/arity model of PR 2 where type
// information is missing. Nothing in the package ever fails because
// typing failed — typing only sharpens.
//
// The importer is stdlib-only (go/importer's source importer for GOROOT
// packages) plus a hand-rolled module-local loader: import paths under
// this repository's module path are parsed from disk relative to the
// go.mod root and type-checked recursively with the same importer. Both
// are cached process-wide, so linting dozens of packages pays the
// stdlib-parsing cost once.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// TypeInfo is the (possibly partial) type-checking result for a package.
type TypeInfo struct {
	Info *types.Info
	Pkg  *types.Package
	// Errors are the soft type-checking diagnostics; a non-empty list
	// means resolution is partial and consumers fell back to the
	// name/arity model wherever objects did not resolve.
	Errors []error
}

// Complete reports whether the package type-checked without diagnostics.
func (t *TypeInfo) Complete() bool { return t != nil && len(t.Errors) == 0 }

// typecheck runs the lenient checker over an already-parsed package.
func typecheck(pkg *Package) *TypeInfo {
	ti := &TypeInfo{
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer:    sharedImporter(),
		FakeImportC: true,
		Error:       func(err error) { ti.Errors = append(ti.Errors, err) },
	}
	// Check returns a usable (if incomplete) package even on errors.
	ti.Pkg, _ = conf.Check(pkg.Name, pkg.Fset, pkg.Files, ti.Info)
	return ti
}

// repoImporter resolves stdlib imports through go/importer's source
// importer and module-local imports by parsing their directories from
// disk. Unresolvable paths yield an empty placeholder package so the
// check continues with soft errors instead of aborting.
type repoImporter struct {
	mu         sync.Mutex
	fset       *token.FileSet
	std        types.Importer
	cache      map[string]*types.Package
	inProgress map[string]bool
	moduleRoot string // "" when no go.mod was found
	modulePath string
}

var (
	importerOnce sync.Once
	importerInst *repoImporter
)

func sharedImporter() *repoImporter {
	importerOnce.Do(func() {
		fset := token.NewFileSet()
		imp := &repoImporter{
			fset:       fset,
			std:        importer.ForCompiler(fset, "source", nil),
			cache:      map[string]*types.Package{},
			inProgress: map[string]bool{},
		}
		imp.moduleRoot, imp.modulePath = findModule()
		importerInst = imp
	})
	return importerInst
}

// findModule walks up from the working directory to the enclosing go.mod
// and reads its module path. Analysis outside a module (a deployed
// binary, say) simply loses module-local typing and falls back.
func findModule() (root, path string) {
	dir, err := os.Getwd()
	if err != nil {
		return "", ""
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest)
				}
			}
			return "", ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", ""
		}
		dir = parent
	}
}

func (ri *repoImporter) Import(path string) (*types.Package, error) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.importLocked(path)
}

func (ri *repoImporter) importLocked(path string) (*types.Package, error) {
	if p, ok := ri.cache[path]; ok {
		return p, nil
	}
	if ri.inProgress[path] {
		// Import cycles cannot occur in valid Go; break anyway.
		return ri.placeholder(path), nil
	}
	ri.inProgress[path] = true
	defer delete(ri.inProgress, path)

	var pkg *types.Package
	if ri.modulePath != "" && (path == ri.modulePath || strings.HasPrefix(path, ri.modulePath+"/")) {
		pkg = ri.importModuleLocal(path)
	} else {
		// Stdlib (and anything else resolvable from GOROOT source). The
		// source importer holds ri.mu across its own recursion — safe,
		// because it never calls back into ri.
		if p, err := ri.std.Import(path); err == nil {
			pkg = p
		}
	}
	if pkg == nil {
		pkg = ri.placeholder(path)
	}
	ri.cache[path] = pkg
	return pkg, nil
}

func (ri *repoImporter) placeholder(path string) *types.Package {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p
}

// importModuleLocal parses and type-checks one module-local package from
// disk. Failures degrade to a placeholder; they never propagate.
func (ri *repoImporter) importModuleLocal(path string) *types.Package {
	dir := filepath.Join(ri.moduleRoot, filepath.FromSlash(strings.TrimPrefix(path, ri.modulePath)))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !wantFile(e.Name()) {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		f, err := parser.ParseFile(ri.fset, filepath.Join(dir, e.Name()), src, 0)
		if err != nil {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil
	}
	conf := types.Config{
		Importer:    importerFunc(func(p string) (*types.Package, error) { return ri.importLocked(p) }),
		FakeImportC: true,
		Error:       func(error) {}, // dependency diagnostics are not ours to report
	}
	pkg, _ := conf.Check(path, ri.fset, files, nil)
	if pkg == nil {
		return nil
	}
	return pkg
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// --- typed resolution helpers on the model ---

// typeOf returns the static type of e, or nil when typing is partial.
func (m *Model) typeOf(e ast.Expr) types.Type {
	if m.Types == nil || m.Types.Info == nil {
		return nil
	}
	if tv, ok := m.Types.Info.Types[e]; ok && tv.Type != nil {
		if b, ok := tv.Type.(*types.Basic); !ok || b.Kind() != types.Invalid {
			return tv.Type
		}
	}
	return nil
}

// namedOf strips pointers and returns the underlying named type, if any.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// mechClasses maps a substrate type (package base name + type name) to
// its mechanism class. The same table serves the untyped fallback, which
// matches the rendered field type text ("monitor.Monitor").
var mechClasses = map[string]string{
	"monitor.Monitor":       "monitor",
	"monitor.Condition":     "condition",
	"serializer.Serializer": "serializer",
	"serializer.Queue":      "queue",
	"serializer.Crowd":      "crowd",
	"semaphore.Mutex":       "mutex",
	"semaphore.Semaphore":   "semaphore",
	"ccr.Region":            "region",
	"csp.Chan":              "channel",
	"csp.Net":               "channel",
	"pathexpr.Set":          "path",
}

// mechClassOf classifies the receiver of a mechanism operation, typed
// first and by rendered type text second. "" means unknown.
func (m *Model) mechClassOf(e ast.Expr, fn *FuncInfo) string {
	if t := m.typeOf(e); t != nil {
		if n := namedOf(t); n != nil && n.Obj().Pkg() != nil {
			pkgPath := n.Obj().Pkg().Path()
			base := pkgPath
			if i := strings.LastIndex(base, "/"); i >= 0 {
				base = base[i+1:]
			}
			if c, ok := mechClasses[base+"."+n.Obj().Name()]; ok {
				return c
			}
			return "" // typed, but not a substrate type
		}
	}
	// Untyped fallback: field type text through the struct model.
	if sel, ok := e.(*ast.SelectorExpr); ok && fn != nil {
		if base, ok := sel.X.(*ast.Ident); ok {
			if si := m.structOfIdent(base, fn); si != nil {
				if f := si.Fields[sel.Sel.Name]; f != nil {
					if c, ok := mechClasses[f.TypeName]; ok {
						return c
					}
				}
			}
		}
	}
	return ""
}

// structOfIdent resolves an identifier to the StructInfo of its inferred
// type: the method receiver, or a constructor-typed local.
func (m *Model) structOfIdent(id *ast.Ident, fn *FuncInfo) *StructInfo {
	if fn == nil {
		return nil
	}
	if fn.Recv != "" && id.Name == fn.RecvVar {
		return m.Structs[fn.Recv]
	}
	if t := m.localTypes(fn)[id.Name]; t != "" {
		return m.Structs[t]
	}
	return nil
}

// resolveCallTyped maps a call to a same-package FuncInfo key using type
// information: plain functions through Uses, methods through Selections.
// Returns "" when objects did not resolve (partial typing).
func (m *Model) resolveCallTyped(call *ast.CallExpr) string {
	if m.Types == nil || m.Types.Info == nil {
		return ""
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := m.Types.Info.Uses[fun].(*types.Func); ok && obj.Pkg() == m.Types.Pkg {
			if m.Funcs[obj.Name()] != nil {
				return obj.Name()
			}
		}
	case *ast.SelectorExpr:
		if sel := m.Types.Info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			f, ok := sel.Obj().(*types.Func)
			if !ok || f.Pkg() != m.Types.Pkg {
				return ""
			}
			if n := namedOf(sel.Recv()); n != nil {
				key := n.Obj().Name() + "." + f.Name()
				if m.Funcs[key] != nil {
					return key
				}
			}
		}
	}
	return ""
}

// isMechOp validates a name/arity classification against the type of the
// receiver: when the receiver's type is known and is NOT a substrate
// type, the call is not a mechanism operation no matter what it is
// called. Unknown types keep the name/arity verdict (fallback).
func (m *Model) isMechOp(op Op, fn *FuncInfo) bool {
	switch op.Class {
	case OpNone, OpSpawn, OpRun, OpTraceEnter, OpTraceExit:
		return true
	}
	if op.Recv == nil {
		return true
	}
	t := m.typeOf(op.Recv)
	if t == nil {
		return true // untyped: trust name/arity as before
	}
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	base := n.Obj().Pkg().Path()
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	_, ok := mechClasses[base+"."+n.Obj().Name()]
	return ok
}
