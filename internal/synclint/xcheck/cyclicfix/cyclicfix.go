// Package cyclicfix is the seeded cyclic-wait fixture the
// cross-validation gate proves itself on: Transfer locks monitor ma
// then mb, Audit locks mb then ma — the textbook ABBA inversion. The
// lockorder analyzer must flag the cycle from this source alone, and
// the xcheck hunt must realize it as a kernel deadlock and seal a
// replayable schedule, closing the static/dynamic loop end to end.
//
// The findings are deliberately allow-annotated (with reasons) so the
// repository's own lint run stays clean; the gate analyzes the package
// with suppressions ignored.
package cyclicfix

import (
	"embed"

	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// Source embeds this package's own text so the static pass analyzes
// exactly the code the hunt executes.
//
//go:embed cyclicfix.go
var Source embed.FS

// Accounts guards two balances with one monitor each, a design whose
// only composition discipline is "lock what you touch" — which is
// exactly how the two methods end up disagreeing on order.
type Accounts struct {
	ma, mb *monitor.Monitor
	a, b   int
}

// New returns the two-monitor account pair.
func New() *Accounts {
	return &Accounts{ma: monitor.New("ma"), mb: monitor.New("mb"), a: 10, b: 10}
}

// Transfer moves one unit from a to b under both monitors, ma first.
// The yield between the two Enters is the deadlock window: a
// cooperative kernel only switches at park/yield points, so without it
// the inversion would be unrealizable even though the order is wrong.
func (x *Accounts) Transfer(p *kernel.Proc) {
	x.ma.Enter(p)
	p.Yield()
	//synclint:allow holdwait,lockorder: seeded ABBA inversion — the xcheck hunt must realize this cycle
	x.mb.Enter(p)
	x.a--
	x.b++
	x.mb.Exit(p)
	x.ma.Exit(p)
}

// Audit reads both balances under both monitors, mb first. The leading
// yield staggers it off the transferrer, so the default FIFO schedule
// completes cleanly — the deadlock exists only on the interleaving
// where Audit claims mb inside Transfer's window, which the hunt has to
// find.
func (x *Accounts) Audit(p *kernel.Proc) int {
	p.Yield()
	x.mb.Enter(p)
	p.Yield()
	//synclint:allow holdwait: second half of the seeded inversion (lockorder reports the cycle once, at Transfer)
	x.ma.Enter(p)
	total := x.a + x.b
	x.ma.Exit(p)
	x.mb.Exit(p)
	return total
}

// Program spawns one transferrer and one auditor — the minimal
// population that can realize the cycle. Used by the hunt and by
// schedule replay, which must agree exactly.
func Program(k kernel.Kernel, r *trace.Recorder) {
	x := New()
	k.Spawn("transfer", func(p *kernel.Proc) {
		x.Transfer(p)
	})
	k.Spawn("audit", func(p *kernel.Proc) {
		_ = x.Audit(p)
	})
}
