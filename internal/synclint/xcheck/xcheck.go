// Package xcheck cross-validates the static synclint analyzers against
// schedule exploration, in both directions.
//
// Forward (Run): every lockorder/lostwakeup finding on the embedded
// solution sources — with allow-annotations deliberately ignored, so
// reasoned suppressions are re-litigated rather than trusted — seeds a
// targeted explore hunt (Prune+Checkpoint+Shrink) that tries to realize
// the hazard on the standard workload. A finding the hunt confirms
// seals a replayable .sched artifact next to it; a finding the hunt
// cannot realize is evidence (not proof) for its allow reason.
//
// Backward (MissAudit): the repository's sealed counterexample corpus
// is replayed against the static pass — every deadlock-class schedule
// must come from a package the lockorder analyzer flags. Exploration
// thereby becomes a regression corpus for the static analyzers: a
// future analyzer change that stops seeing a realized deadlock fails
// the audit.
package xcheck

import (
	"fmt"
	"go/ast"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/explore"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/synclint"
	"repro/internal/synclint/xcheck/cyclicfix"
	"repro/internal/trace"
)

// FixtureMechanism, FixtureProblem, and FixtureScenario identify the
// seeded cyclic-wait fixture in sealed schedule files; cmd/simtrace
// resolves FixtureScenario back to cyclicfix.Program at replay time.
const (
	FixtureMechanism = "fixture"
	FixtureProblem   = "cyclic-wait"
	FixtureScenario  = "xcheck"
)

// solutionDirs maps mechanism keys to their package directory inside
// solutions.Sources.
var solutionDirs = map[string]string{
	"semaphore":  "semsol",
	"ccr":        "ccrsol",
	"pathexpr":   "pathexprsol",
	"monitor":    "monitorsol",
	"serializer": "serializersol",
	"csp":        "cspsol",
}

// typeProblems maps a solution type to the standard problem that
// exercises it. Unexported server types are reached through their
// exported fronts, which share the type name prefix rendering below.
var typeProblems = map[string]string{
	"BoundedBuffer":   problems.NameBoundedBuffer,
	"FCFS":            problems.NameFCFS,
	"ReadersPriority": problems.NameReadersPriority,
	"WritersPriority": problems.NameWritersPriority,
	"FCFSRW":          problems.NameFCFSRW,
	"Disk":            problems.NameDisk,
	"AlarmClock":      problems.NameAlarmClock,
	"OneSlot":         problems.NameOneSlot,
}

// SeedAnalyzers are the analyzers whose findings seed hunts: the two
// whose hazard classes exploration can actually realize (a cyclic wait
// deadlocks the kernel; a lost wakeup strands a sleeper).
func SeedAnalyzers() []*synclint.Analyzer {
	return []*synclint.Analyzer{synclint.LockOrderAnalyzer, synclint.LostWakeupAnalyzer}
}

// Options configures the hunts.
type Options struct {
	// RandomRuns and DFSRuns are per-hunt exploration budgets
	// (explore.Options semantics; zero values take explore's defaults).
	RandomRuns int
	DFSRuns    int
	// Workers throttles each hunt's parallelism; 0 = GOMAXPROCS.
	Workers int
	// SchedDir, when non-empty, receives a sealed .sched artifact for
	// every confirmed finding.
	SchedDir string
	// Progress receives each hunt's stats snapshots when non-nil.
	Progress func(explore.Stats)
}

// Row is the outcome of cross-validating one static finding.
type Row struct {
	Mechanism string
	Problem   string
	Finding   synclint.Finding
	// Status is "confirmed" (the hunt realized the hazard),
	// "unrealized" (the budgeted hunt found nothing — evidence for the
	// finding's allow reason), or "unmapped" (the finding's enclosing
	// type has no standard workload to hunt on).
	Status string
	// Runs is the number of schedules the hunt judged.
	Runs int
	// SchedPath is the sealed artifact for confirmed findings when
	// Options.SchedDir was set.
	SchedPath string
}

// target is one source package the gate analyzes, with the program
// factory that turns a finding's problem into a huntable program.
type target struct {
	mechanism string
	pkg       *synclint.Package
	program   func(problem string) (explore.Program, explore.Oracle, string, error)
}

// Run analyzes every target package, hunts each finding, and returns
// the rows sorted by mechanism, problem, position.
func Run(opts Options) ([]Row, error) {
	targets, err := loadTargets()
	if err != nil {
		return nil, err
	}
	var rows []Row
	type huntKey struct{ mech, problem string }
	hunted := map[huntKey]*explore.Result{}
	for _, tgt := range targets {
		findings := synclint.RunAll(tgt.pkg, SeedAnalyzers())
		for _, f := range findings {
			row := Row{Mechanism: tgt.mechanism, Finding: f}
			typeName := enclosingType(tgt.pkg, f)
			problem, ok := problemForType(tgt.mechanism, typeName)
			if !ok {
				row.Status = "unmapped"
				rows = append(rows, row)
				continue
			}
			row.Problem = problem
			prog, oracle, scenario, err := tgt.program(problem)
			if err != nil {
				return nil, fmt.Errorf("xcheck: %s/%s: %w", tgt.mechanism, problem, err)
			}
			key := huntKey{tgt.mechanism, problem}
			res := hunted[key]
			if res == nil {
				r := explore.Run(prog, oracle, explore.Options{
					RandomRuns: opts.RandomRuns,
					DFSRuns:    opts.DFSRuns,
					Workers:    opts.Workers,
					Prune:      true,
					Checkpoint: true,
					Shrink:     true,
					Pool:       true,
					Progress:   opts.Progress,
				})
				res = &r
				hunted[key] = res
			}
			row.Runs = res.Runs
			if res.Found {
				row.Status = "confirmed"
				if opts.SchedDir != "" {
					path, err := seal(opts.SchedDir, tgt.mechanism, problem, scenario, prog, oracle, res)
					if err != nil {
						return nil, err
					}
					row.SchedPath = path
				}
			} else {
				row.Status = "unrealized"
			}
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Mechanism != b.Mechanism {
			return a.Mechanism < b.Mechanism
		}
		if a.Problem != b.Problem {
			return a.Problem < b.Problem
		}
		if a.Finding.Pos.Filename != b.Finding.Pos.Filename {
			return a.Finding.Pos.Filename < b.Finding.Pos.Filename
		}
		return a.Finding.Pos.Line < b.Finding.Pos.Line
	})
	return rows, nil
}

func loadTargets() ([]target, error) {
	var targets []target
	for _, suite := range solutions.All() {
		suite := suite
		dir := solutionDirs[suite.Mechanism]
		if dir == "" {
			return nil, fmt.Errorf("xcheck: no source directory for mechanism %q", suite.Mechanism)
		}
		pkg, err := synclint.LoadFS(solutions.Sources, dir)
		if err != nil {
			return nil, fmt.Errorf("xcheck: load %s: %w", dir, err)
		}
		targets = append(targets, target{
			mechanism: suite.Mechanism,
			pkg:       pkg,
			program: func(problem string) (explore.Program, explore.Oracle, string, error) {
				prog, check, err := solutions.StandardProgram(suite, problem, false)
				if err != nil {
					return nil, nil, "", err
				}
				return explore.Program(prog), check, "standard", nil
			},
		})
	}
	fixture, err := synclint.LoadFS(cyclicfix.Source, ".")
	if err != nil {
		return nil, fmt.Errorf("xcheck: load cyclicfix fixture: %w", err)
	}
	targets = append(targets, target{
		mechanism: FixtureMechanism,
		pkg:       fixture,
		program: func(string) (explore.Program, explore.Oracle, string, error) {
			return cyclicfix.Program, nilOracle, FixtureScenario, nil
		},
	})
	return targets, nil
}

// nilOracle judges nothing: the fixture's hazard is a kernel deadlock,
// which exploration reports as a finding on its own.
func nilOracle(trace.Trace) []problems.Violation { return nil }

// problemForType maps a finding's enclosing type to the problem whose
// standard workload exercises it.
func problemForType(mechanism, typeName string) (string, bool) {
	if mechanism == FixtureMechanism {
		return FixtureProblem, typeName != ""
	}
	if typeName == "" {
		return "", false
	}
	// Exact match first, then prefix (cspsol's rwServer-style backends
	// keep their front's name as a prefix: "Disk" matches "diskServer"
	// only via the exported front, so prefix matching runs on the
	// exported names).
	if p, ok := typeProblems[typeName]; ok {
		return p, true
	}
	for name, p := range typeProblems {
		if strings.HasPrefix(typeName, name) {
			return p, true
		}
	}
	return "", false
}

// enclosingType finds the receiver type of the function containing a
// finding, or "" for package-level positions.
func enclosingType(pkg *synclint.Package, f synclint.Finding) string {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			start := pkg.Fset.Position(fn.Pos())
			end := pkg.Fset.Position(fn.End())
			if start.Filename != f.Pos.Filename || f.Pos.Line < start.Line || f.Pos.Line > end.Line {
				continue
			}
			t := fn.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

// seal writes the hunt's (shrunk) schedule as a verified artifact and
// returns its path.
func seal(dir, mechanism, problem, scenario string, prog explore.Program, oracle explore.Oracle, res *explore.Result) (string, error) {
	schedule := res.Schedule
	if res.MinSchedule != nil {
		schedule = res.MinSchedule
	}
	name := fmt.Sprintf("%s-%s.sched", mechanism, problem)
	if mechanism == FixtureMechanism {
		name = "cyclicwait.sched"
	}
	f := explore.NewSchedFile(mechanism, problem, scenario, schedule)
	f.Note = "sealed by synclint xcheck hunt"
	if err := f.Seal(prog, oracle); err != nil {
		return "", fmt.Errorf("xcheck: sealing %s: %w", name, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	if err := f.WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// AuditRow is the classification of one sealed schedule artifact.
type AuditRow struct {
	File  string
	Class string // "deadlock", "error", or "violation"
	// Verdict is "flagged" (the static pass sees the hazard class),
	// "dynamic-only" (the artifact's hazard class is outside static
	// reach: ordering violations, step-limit errors), or "MISS" (a
	// deadlock the lockorder analyzer no longer flags).
	Verdict string
	Detail  string
}

// Missed reports whether any audited artifact was a MISS.
func Missed(rows []AuditRow) bool {
	for _, r := range rows {
		if r.Verdict == "MISS" {
			return true
		}
	}
	return false
}

// MissAudit classifies every .sched artifact under dir (recursively)
// against the static pass: deadlock-class schedules must originate from
// a package the lockorder analyzer flags.
func MissAudit(dir string) ([]AuditRow, error) {
	var files []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".sched") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var rows []AuditRow
	for _, path := range files {
		f, err := explore.ReadSchedFile(path)
		if err != nil {
			return nil, fmt.Errorf("xcheck: %s: %w", path, err)
		}
		row := AuditRow{File: filepath.Base(path)}
		switch f.KernelError {
		case explore.KernelErrDeadlock:
			row.Class = "deadlock"
			row.Verdict, row.Detail = auditDeadlock(f)
		case "":
			row.Class = "violation"
			row.Verdict = "dynamic-only"
			row.Detail = "ordering/priority violations are schedule properties, outside static reach"
		default:
			row.Class = "error"
			row.Verdict = "dynamic-only"
			row.Detail = "non-deadlock kernel errors carry no static lock-order signature"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// auditDeadlock checks that the package a deadlock artifact was hunted
// on is still flagged by the lockorder analyzer (allows ignored — an
// annotation must not hide a realized deadlock from the audit).
func auditDeadlock(f *explore.SchedFile) (verdict, detail string) {
	var pkg *synclint.Package
	var err error
	if f.Scenario == FixtureScenario {
		pkg, err = synclint.LoadFS(cyclicfix.Source, ".")
	} else if dir := solutionDirs[f.Mechanism]; dir != "" {
		pkg, err = synclint.LoadFS(solutions.Sources, dir)
	} else {
		return "MISS", fmt.Sprintf("no source package known for mechanism %q", f.Mechanism)
	}
	if err != nil {
		return "MISS", err.Error()
	}
	findings := synclint.RunAll(pkg, []*synclint.Analyzer{synclint.LockOrderAnalyzer})
	if len(findings) == 0 {
		return "MISS", fmt.Sprintf("deadlock realized on %s/%s but lockorder reports nothing in its package", f.Mechanism, f.Problem)
	}
	return "flagged", fmt.Sprintf("lockorder reports %d finding(s) in the package", len(findings))
}
