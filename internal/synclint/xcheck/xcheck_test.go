package xcheck

import (
	"path/filepath"
	"testing"

	"repro/internal/explore"
	"repro/internal/synclint"
	"repro/internal/synclint/xcheck/cyclicfix"
)

// TestGateEndToEnd runs the whole cross-validation gate with a modest
// budget: the seeded fixture must be flagged statically, confirmed
// dynamically, and sealed as a replayable artifact; the solution
// findings (all reasoned allows) must stay unrealized, backing their
// reasons with a budgeted hunt.
func TestGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rows, err := Run(Options{RandomRuns: 60, DFSRuns: 200, SchedDir: dir})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var fixture *Row
	for i := range rows {
		r := &rows[i]
		switch r.Mechanism {
		case FixtureMechanism:
			if fixture == nil {
				fixture = r
			}
		default:
			if r.Status == "confirmed" {
				t.Errorf("solution finding unexpectedly realized: %+v", r)
			}
			if r.Status == "unmapped" {
				t.Errorf("solution finding did not map to a standard workload: %+v", r)
			}
		}
	}
	if fixture == nil {
		t.Fatalf("lockorder produced no finding on the seeded fixture; rows: %+v", rows)
	}
	if fixture.Status != "confirmed" {
		t.Fatalf("fixture finding not confirmed by the hunt: %+v", *fixture)
	}
	if fixture.SchedPath == "" {
		t.Fatalf("confirmed fixture finding has no sealed artifact")
	}

	// The sealed artifact must replay with full drift detection.
	f, err := explore.ReadSchedFile(fixture.SchedPath)
	if err != nil {
		t.Fatalf("read sealed artifact: %v", err)
	}
	if f.KernelError != explore.KernelErrDeadlock {
		t.Fatalf("fixture artifact records %q, want deadlock", f.KernelError)
	}
	if _, _, err := f.Verify(cyclicfix.Program, nilOracle); err != nil {
		t.Fatalf("sealed artifact does not replay: %v", err)
	}

	// The miss audit over the sealed artifact must classify it as a
	// statically flagged deadlock.
	audit, err := MissAudit(dir)
	if err != nil {
		t.Fatalf("MissAudit: %v", err)
	}
	if len(audit) != 1 || audit[0].Verdict != "flagged" {
		t.Fatalf("audit of sealed fixture artifact: %+v", audit)
	}
	if Missed(audit) {
		t.Fatalf("unexpected miss: %+v", audit)
	}
}

// TestMissAuditCorpus classifies the repository's existing golden
// counterexamples: ordering violations are dynamic-only, never misses.
func TestMissAuditCorpus(t *testing.T) {
	rows, err := MissAudit(filepath.Join("..", "..", "explore", "testdata"))
	if err != nil {
		t.Fatalf("MissAudit: %v", err)
	}
	if len(rows) == 0 {
		t.Fatalf("no golden .sched artifacts found in the explore corpus")
	}
	if Missed(rows) {
		t.Fatalf("corpus audit reported a miss: %+v", rows)
	}
}

// TestFixtureFlaggedWithAllowsHonored pins the dual contract: the
// fixture is clean under the normal Run (reasoned allows), but RunAll
// still sees the seeded cycle.
func TestFixtureFlaggedWithAllowsHonored(t *testing.T) {
	pkg, err := synclint.LoadFS(cyclicfix.Source, ".")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	clean, suppressed := synclint.Run(pkg, synclint.Analyzers())
	if len(clean) != 0 {
		t.Fatalf("fixture should be clean with allows honored, got %v", clean)
	}
	if suppressed == 0 {
		t.Fatalf("fixture should have suppressed findings")
	}
	raw := synclint.RunAll(pkg, SeedAnalyzers())
	if len(raw) == 0 {
		t.Fatalf("RunAll should surface the seeded cycle")
	}
}
