package synth

// The paper's canonical problems re-expressed as constraint Sets. These
// encodings exist to pin the derived oracle against the handwritten ones
// (TestDerivedOracleAgreesWithHandwritten): each canonical problem's
// constraints are points in the same grid the sampler draws from, so the
// derived oracle must reach the same verdict as the handwritten oracle
// on any trace of that problem. The class shapes mirror the standard
// workloads (solutions.Std*Config) for documentation value; judging
// depends only on class names and constraints.

import "repro/internal/problems"

// Canonical returns the constraint-set encoding of a canonical problem,
// or false for problems the grammar cannot fully express. The
// disk-scheduler's exclusion constraint is expressible but its SCAN
// priority (an elevator over track parameters relative to a moving head
// — mechanism-internal local state) is not, so its encoding is
// exclusion-only and callers must compare it against the handwritten
// oracle's exclusion-only (non-strict) verdict.
func Canonical(problem string) (*Set, bool) {
	switch problem {
	case problems.NameBoundedBuffer:
		s := &Set{
			Name: "canonical-bounded-buffer",
			Classes: []Class{
				{Name: problems.OpDeposit, Procs: 3, Rounds: 10, Yields: 1, Gap: 1, SlotDelta: 1},
				{Name: problems.OpRemove, Procs: 2, Rounds: 15, Yields: 1, Gap: 1, SlotDelta: -1},
			},
			Excludes: []ExcludeWhen{
				{Cond: Or{CountGE{0, CountActive, 1}, CountGE{1, CountActive, 1}}, Class: 0},
				{Cond: Or{CountGE{0, CountActive, 1}, CountGE{1, CountActive, 1}}, Class: 1},
				{Cond: SlotsGE{3}, Class: 0},
				{Cond: SlotsLE{0}, Class: 1},
			},
		}
		return s, true

	case problems.NameFCFS:
		s := &Set{
			Name: "canonical-fcfs",
			Classes: []Class{
				{Name: problems.OpUse, Procs: 5, Rounds: 4, Yields: 1, Gap: 1},
			},
			Excludes: []ExcludeWhen{
				{Cond: CountGE{0, CountActive, 1}, Class: 0},
			},
			Priorities: []PriorityWhen{
				{Cond: OlderReq{}, A: 0, B: 0},
			},
		}
		return s, true

	case problems.NameReadersPriority:
		s := rwBase("canonical-readers-priority")
		s.Priorities = []PriorityWhen{{Cond: True{}, A: 0, B: 1}}
		return s, true

	case problems.NameWritersPriority:
		s := rwBase("canonical-writers-priority")
		s.Priorities = []PriorityWhen{{Cond: True{}, A: 1, B: 0}}
		return s, true

	case problems.NameFCFSRW:
		s := rwBase("canonical-fcfs-rw")
		// FCFS across every class pair except read over read: the
		// handwritten oracle exempts read-read overtaking (overlapping
		// reads make it meaningless).
		s.Priorities = []PriorityWhen{
			{Cond: OlderReq{}, A: 0, B: 1},
			{Cond: OlderReq{}, A: 1, B: 0},
			{Cond: OlderReq{}, A: 1, B: 1},
		}
		return s, true

	case problems.NameOneSlot:
		s := &Set{
			Name: "canonical-one-slot",
			Classes: []Class{
				{Name: problems.OpPut, Procs: 2, Rounds: 8, Yields: 1, Gap: 1},
				{Name: problems.OpGet, Procs: 2, Rounds: 8, Yields: 1, Gap: 1},
			},
			Excludes: []ExcludeWhen{
				{Cond: Or{CountGE{0, CountActive, 1}, CountGE{1, CountActive, 1}}, Class: 0},
				{Cond: Or{CountGE{0, CountActive, 1}, CountGE{1, CountActive, 1}}, Class: 1},
				{Cond: LastStartedIs{0}, Class: 0},
				{Cond: Not{LastStartedIs{0}}, Class: 1},
			},
		}
		return s, true

	case problems.NameAlarmClock:
		s := &Set{
			Name: "canonical-alarm-clock",
			Classes: []Class{
				{Name: problems.OpTick, Procs: 1, Rounds: 15, Yields: 1, Gap: 1},
				{Name: problems.OpWakeMe, Procs: 6, Rounds: 1, Yields: 1, Args: []int64{5, 2, 9, 1, 7, 3}},
			},
			Excludes: []ExcludeWhen{
				{Cond: StartedBelowArg{0}, Class: 1},
			},
		}
		return s, true

	case problems.NameDisk:
		s := &Set{
			Name: "canonical-disk-exclusion",
			Classes: []Class{
				{Name: problems.OpSeek, Procs: 8, Rounds: 1, Yields: 1, Args: []int64{55, 10, 60, 90, 20, 75, 40, 120}},
			},
			Excludes: []ExcludeWhen{
				{Cond: CountGE{0, CountActive, 1}, Class: 0},
			},
		}
		return s, true
	}
	return nil, false
}

// rwBase is the shared readers–writers exclusion skeleton: read excluded
// while a writer is active; write excluded while anything is active.
// Class 0 is read, class 1 is write.
func rwBase(name string) *Set {
	return &Set{
		Name: name,
		Classes: []Class{
			{Name: problems.OpRead, Procs: 4, Rounds: 4, Yields: 2, Gap: 1},
			{Name: problems.OpWrite, Procs: 2, Rounds: 4, Yields: 2, Gap: 1},
		},
		Excludes: []ExcludeWhen{
			{Cond: CountGE{1, CountActive, 1}, Class: 0},
			{Cond: Or{CountGE{0, CountActive, 1}, CountGE{1, CountActive, 1}}, Class: 1},
		},
	}
}
