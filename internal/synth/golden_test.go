package synth

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

const (
	goldenSeed = 1
	goldenN    = 24
)

// TestGoldenCorpus pins the sampler's output for a fixed seed: any
// generator change shows up as a reviewed diff of testdata/corpus.golden
// (regenerate with `go test ./internal/synth -run Golden -update`), not
// as a silent change in fuzz coverage.
func TestGoldenCorpus(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Sample(goldenSeed, goldenN)); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "corpus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sampler output for seed %d drifted from %s; run with -update and review the diff.\n--- got ---\n%s",
			goldenSeed, path, got)
	}
}
