// Package synth generates synchronization problems from Bloom's
// constraint grid instead of instantiating them by hand.
//
// The paper's method describes a synchronization scheme as a set of
// constraints — exclusion ("if condition then exclude class A") and
// priority ("if condition then class A precedes class B") — whose
// conditions reference six categories of information (§3). The repo's
// seven canonical problems are points in that grid; this package samples
// it: a typed condition AST (Cond), a seeded sampler emitting
// well-formed, satisfiable constraint Sets (sampler.go), a mechanically
// derived trace oracle for any Set (oracle.go), a reference admission
// policy every mechanism adapter shares (policy.go, resource.go), and a
// workload emitter that makes each Set runnable under exploration and
// load (program.go). cmd/syncfuzz drives the whole pipeline at scale.
package synth

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Class is one operation class of a generated problem: the unit the
// constraints talk about ("readers", "writers", "deposit", …). Its name
// doubles as the trace operation name.
type Class struct {
	Name   string  `json:"name"`
	Procs  int     `json:"procs"`  // processes issuing this class
	Rounds int     `json:"rounds"` // operations per process
	Args   []int64 `json:"args,omitempty"`
	Yields int     `json:"yields"`          // yields inside the operation body
	Gap    int     `json:"gap,omitempty"`   // yields between a process's rounds
	Delay  int64   `json:"delay,omitempty"` // ticks slept before the first request
	// SlotDelta is the class's contribution to the shared slot counter
	// when an operation completes (+1 producer, -1 consumer); the slot
	// counter is the grammar's "local state" axis.
	SlotDelta int `json:"slot_delta,omitempty"`
}

// Ops is the total number of operations the class issues.
func (c Class) Ops() int { return c.Procs * c.Rounds }

// Arg returns the argument for the round-th operation of the proc-th
// process, and whether the class carries arguments at all.
func (c Class) Arg(proc, round int) (int64, bool) {
	if len(c.Args) == 0 {
		return 0, false
	}
	return c.Args[(proc*c.Rounds+round)%len(c.Args)], true
}

// CountKind selects which per-class population a CountGE condition
// inspects.
type CountKind int

const (
	// CountWaiting: requests recorded but not yet admitted (SyncState).
	CountWaiting CountKind = iota
	// CountActive: admitted and not yet completed (SyncState).
	CountActive
	// CountStarted: admitted, completed or not (History).
	CountStarted
	// CountDone: completed (History).
	CountDone
)

func (k CountKind) String() string {
	switch k {
	case CountWaiting:
		return "waiting"
	case CountActive:
		return "active"
	case CountStarted:
		return "started"
	case CountDone:
		return "done"
	}
	return fmt.Sprintf("CountKind(%d)", int(k))
}

// Cand is a candidate operation as a condition sees it: its class, its
// request parameter, and its request stamp (request time).
type Cand struct {
	Class  int
	Arg    int64
	HasArg bool
	Stamp  int64
}

// StateView is the state a condition may consult, mirroring the paper's
// information categories: per-class populations (synchronization state
// and history), the slot counter (local state), and the most recently
// admitted class (history). Both the runtime Gate and the derived trace
// oracle implement it, which is what makes the oracle derivation
// mechanical — the same Cond evaluates against either.
type StateView interface {
	Count(class int, kind CountKind) int
	Slots() int
	// LastStarted is the class of the most recently admitted operation,
	// -1 before any admission.
	LastStarted() int
}

// Cond is a constraint condition. Eval judges a candidate against a
// state view; for priority conditions, other is the disfavored candidate
// (nil for exclusion conditions). Uses reports the paper's information
// categories the condition references; Pair reports whether it compares
// two candidates (permitted only in priority rules); String renders a
// canonical form (classes appear as c0, c1, … in definition order).
type Cond interface {
	Eval(sv StateView, self Cand, other *Cand) bool
	Uses() []core.InfoType
	Pair() bool
	String() string
}

// True always holds: the pure request-type rule ("readers precede
// writers, unconditionally").
type True struct{}

func (True) Eval(StateView, Cand, *Cand) bool { return true }
func (True) Uses() []core.InfoType            { return nil }
func (True) Pair() bool                       { return false }
func (True) String() string                   { return "true" }

// CountGE holds when the selected population of Class has at least N
// members ("a writer is active", "two readers are waiting").
type CountGE struct {
	Class int
	Kind  CountKind
	N     int
}

func (c CountGE) Eval(sv StateView, _ Cand, _ *Cand) bool {
	return sv.Count(c.Class, c.Kind) >= c.N
}
func (c CountGE) Uses() []core.InfoType {
	if c.Kind == CountStarted || c.Kind == CountDone {
		return []core.InfoType{core.History}
	}
	return []core.InfoType{core.SyncState}
}
func (c CountGE) Pair() bool     { return false }
func (c CountGE) String() string { return fmt.Sprintf("%s(c%d)>=%d", c.Kind, c.Class, c.N) }

// StartedBelowArg holds while fewer than self.Arg operations of Class
// have started — the alarm-clock shape ("exclude wakeme(n) until n ticks
// have run").
type StartedBelowArg struct{ Class int }

func (c StartedBelowArg) Eval(sv StateView, self Cand, _ *Cand) bool {
	return self.HasArg && int64(sv.Count(c.Class, CountStarted)) < self.Arg
}
func (c StartedBelowArg) Uses() []core.InfoType {
	return []core.InfoType{core.RequestParams, core.History}
}
func (c StartedBelowArg) Pair() bool     { return false }
func (c StartedBelowArg) String() string { return fmt.Sprintf("started(c%d)<arg", c.Class) }

// SlotsGE holds when the slot counter is at least N ("the buffer is
// full" for a producer with cap N).
type SlotsGE struct{ N int }

func (c SlotsGE) Eval(sv StateView, _ Cand, _ *Cand) bool { return sv.Slots() >= c.N }
func (c SlotsGE) Uses() []core.InfoType                   { return []core.InfoType{core.LocalState} }
func (c SlotsGE) Pair() bool                              { return false }
func (c SlotsGE) String() string                          { return fmt.Sprintf("slots>=%d", c.N) }

// SlotsLE holds when the slot counter is at most N ("the buffer is
// empty" for a consumer with N = 0).
type SlotsLE struct{ N int }

func (c SlotsLE) Eval(sv StateView, _ Cand, _ *Cand) bool { return sv.Slots() <= c.N }
func (c SlotsLE) Uses() []core.InfoType                   { return []core.InfoType{core.LocalState} }
func (c SlotsLE) Pair() bool                              { return false }
func (c SlotsLE) String() string                          { return fmt.Sprintf("slots<=%d", c.N) }

// ArgGE holds when the candidate's own argument is at least N.
type ArgGE struct{ N int64 }

func (c ArgGE) Eval(_ StateView, self Cand, _ *Cand) bool { return self.HasArg && self.Arg >= c.N }
func (c ArgGE) Uses() []core.InfoType                     { return []core.InfoType{core.RequestParams} }
func (c ArgGE) Pair() bool                                { return false }
func (c ArgGE) String() string                            { return fmt.Sprintf("arg>=%d", c.N) }

// ArgLE holds when the candidate's own argument is at most N.
type ArgLE struct{ N int64 }

func (c ArgLE) Eval(_ StateView, self Cand, _ *Cand) bool { return self.HasArg && self.Arg <= c.N }
func (c ArgLE) Uses() []core.InfoType                     { return []core.InfoType{core.RequestParams} }
func (c ArgLE) Pair() bool                                { return false }
func (c ArgLE) String() string                            { return fmt.Sprintf("arg<=%d", c.N) }

// LastStartedIs holds when the most recently admitted operation was of
// Class — the one-slot-buffer alternation shape.
type LastStartedIs struct{ Class int }

func (c LastStartedIs) Eval(sv StateView, _ Cand, _ *Cand) bool { return sv.LastStarted() == c.Class }
func (c LastStartedIs) Uses() []core.InfoType                   { return []core.InfoType{core.History} }
func (c LastStartedIs) Pair() bool                              { return false }
func (c LastStartedIs) String() string                          { return fmt.Sprintf("last(c%d)", c.Class) }

// OlderReq holds when the favored candidate requested before the
// disfavored one — first-come-first-served.
type OlderReq struct{}

func (OlderReq) Eval(_ StateView, self Cand, other *Cand) bool {
	return other != nil && self.Stamp < other.Stamp
}
func (OlderReq) Uses() []core.InfoType { return []core.InfoType{core.RequestTime} }
func (OlderReq) Pair() bool            { return true }
func (OlderReq) String() string        { return "older" }

// SmallerArg holds when the favored candidate's argument is strictly
// smaller (shortest-delay-first scheduling). Equal arguments favor
// neither side.
type SmallerArg struct{}

func (SmallerArg) Eval(_ StateView, self Cand, other *Cand) bool {
	return other != nil && self.HasArg && other.HasArg && self.Arg < other.Arg
}
func (SmallerArg) Uses() []core.InfoType { return []core.InfoType{core.RequestParams} }
func (SmallerArg) Pair() bool            { return true }
func (SmallerArg) String() string        { return "smaller-arg" }

// LargerArg holds when the favored candidate's argument is strictly
// larger.
type LargerArg struct{}

func (LargerArg) Eval(_ StateView, self Cand, other *Cand) bool {
	return other != nil && self.HasArg && other.HasArg && self.Arg > other.Arg
}
func (LargerArg) Uses() []core.InfoType { return []core.InfoType{core.RequestParams} }
func (LargerArg) Pair() bool            { return true }
func (LargerArg) String() string        { return "larger-arg" }

// Not negates a condition.
type Not struct{ X Cond }

func (c Not) Eval(sv StateView, self Cand, other *Cand) bool { return !c.X.Eval(sv, self, other) }
func (c Not) Uses() []core.InfoType                          { return c.X.Uses() }
func (c Not) Pair() bool                                     { return c.X.Pair() }
func (c Not) String() string                                 { return "!(" + c.X.String() + ")" }

// And conjoins two conditions.
type And struct{ X, Y Cond }

func (c And) Eval(sv StateView, self Cand, other *Cand) bool {
	return c.X.Eval(sv, self, other) && c.Y.Eval(sv, self, other)
}
func (c And) Uses() []core.InfoType { return unionUses(c.X.Uses(), c.Y.Uses()) }
func (c And) Pair() bool            { return c.X.Pair() || c.Y.Pair() }
func (c And) String() string        { return "(" + c.X.String() + " & " + c.Y.String() + ")" }

// Or disjoins two conditions.
type Or struct{ X, Y Cond }

func (c Or) Eval(sv StateView, self Cand, other *Cand) bool {
	return c.X.Eval(sv, self, other) || c.Y.Eval(sv, self, other)
}
func (c Or) Uses() []core.InfoType { return unionUses(c.X.Uses(), c.Y.Uses()) }
func (c Or) Pair() bool            { return c.X.Pair() || c.Y.Pair() }
func (c Or) String() string        { return "(" + c.X.String() + " | " + c.Y.String() + ")" }

// unionUses merges two Uses lists into the paper's canonical order.
func unionUses(a, b []core.InfoType) []core.InfoType {
	var out []core.InfoType
	for _, t := range core.AllInfoTypes() {
		for _, u := range a {
			if u == t {
				out = append(out, t)
				break
			}
		}
		if len(out) > 0 && out[len(out)-1] == t {
			continue
		}
		for _, u := range b {
			if u == t {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// walkCond visits c and every sub-condition.
func walkCond(c Cond, fn func(Cond)) {
	fn(c)
	switch v := c.(type) {
	case Not:
		walkCond(v.X, fn)
	case And:
		walkCond(v.X, fn)
		walkCond(v.Y, fn)
	case Or:
		walkCond(v.X, fn)
		walkCond(v.Y, fn)
	}
}

// condUsesWaiting reports whether c consults the waiting population —
// the one view that is exact only on deterministic traces (a recorded
// request may not have reached the mechanism yet on the real kernel).
func condUsesWaiting(c Cond) bool {
	found := false
	walkCond(c, func(c Cond) {
		if g, ok := c.(CountGE); ok && g.Kind == CountWaiting {
			found = true
		}
	})
	return found
}

// condUsesSelfArg reports whether c reads the candidate's argument.
func condUsesSelfArg(c Cond) bool {
	found := false
	walkCond(c, func(c Cond) {
		switch c.(type) {
		case ArgGE, ArgLE, StartedBelowArg, SmallerArg, LargerArg:
			found = true
		}
	})
	return found
}

// condClasses collects the class indices c references.
func condClasses(c Cond) []int {
	var out []int
	walkCond(c, func(c Cond) {
		switch v := c.(type) {
		case CountGE:
			out = append(out, v.Class)
		case StartedBelowArg:
			out = append(out, v.Class)
		case LastStartedIs:
			out = append(out, v.Class)
		}
	})
	return out
}

// ExcludeWhen is an exclusion constraint: while Cond holds, no operation
// of Class may be admitted.
type ExcludeWhen struct {
	Cond  Cond
	Class int
}

func (x ExcludeWhen) String() string {
	return fmt.Sprintf("exclude c%d when %s", x.Class, x.Cond)
}

// PriorityWhen is a priority constraint: a waiting candidate of class A
// for which Cond(A-candidate, B-candidate) holds must be admitted before
// the B candidate.
type PriorityWhen struct {
	Cond Cond
	A, B int
}

func (p PriorityWhen) String() string {
	return fmt.Sprintf("priority c%d over c%d when %s", p.A, p.B, p.Cond)
}

// Set is one generated synchronization problem: its operation classes
// and the constraints governing them.
type Set struct {
	Name       string
	Seed       int64
	Classes    []Class
	Excludes   []ExcludeWhen
	Priorities []PriorityWhen
}

// priorityAtoms is the closed set of conditions a priority rule may
// carry. Restricting priority conditions to state-free comparisons keeps
// the admission relation well-founded (Validate proves it per shape) and
// keeps oracle and mechanism in agreement: a stateful priority condition
// would be evaluated by the mechanism at grant time but by the oracle at
// the recorded Enter, and the two states can differ.
func priorityAtom(c Cond) bool {
	switch c.(type) {
	case True, OlderReq, SmallerArg, LargerArg:
		return true
	}
	return false
}

// Validate checks structural well-formedness plus the priority-shape
// rules that make a Set deadlock-free by construction on the priority
// axis (exclusion-induced stalls are the sampler's rejection pass):
//
//   - every priority condition is one of true, older, smaller-arg,
//     larger-arg; a same-class rule must not be unconditional;
//   - at most one rule per ordered class pair;
//   - unconditional cross-class rules must form an acyclic class graph
//     and exclude pair-comparison cross rules (mixing the two measures
//     can cycle: A older than B, B's argument smaller than C's, C older
//     than A blocks all three);
//   - otherwise every rule in the set compares the same measure (all
//     older, all smaller-arg, or all larger-arg), which is a strict
//     partial order on candidates and therefore always leaves a minimal
//     unblocked candidate.
func (s *Set) Validate() error {
	if len(s.Classes) == 0 {
		return fmt.Errorf("synth: set %s has no classes", s.Name)
	}
	names := map[string]bool{}
	for i, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("synth: class %d has no name", i)
		}
		if names[c.Name] {
			return fmt.Errorf("synth: duplicate class name %q", c.Name)
		}
		names[c.Name] = true
		if c.Procs < 1 || c.Rounds < 1 {
			return fmt.Errorf("synth: class %s: procs and rounds must be positive", c.Name)
		}
	}
	inRange := func(i int) bool { return i >= 0 && i < len(s.Classes) }

	for i, x := range s.Excludes {
		if !inRange(x.Class) {
			return fmt.Errorf("synth: exclude %d targets unknown class %d", i, x.Class)
		}
		if x.Cond == nil {
			return fmt.Errorf("synth: exclude %d has no condition", i)
		}
		if x.Cond.Pair() {
			return fmt.Errorf("synth: exclude %d (%s) uses a pair condition", i, x)
		}
		for _, c := range condClasses(x.Cond) {
			if !inRange(c) {
				return fmt.Errorf("synth: exclude %d (%s) references unknown class %d", i, x, c)
			}
		}
		if condUsesSelfArg(x.Cond) && len(s.Classes[x.Class].Args) == 0 {
			return fmt.Errorf("synth: exclude %d (%s) reads the argument of argless class %s",
				i, x, s.Classes[x.Class].Name)
		}
	}

	seenPair := map[[2]int]bool{}
	var crossTrue, crossPair, selfRules []PriorityWhen
	for i, p := range s.Priorities {
		if !inRange(p.A) || !inRange(p.B) {
			return fmt.Errorf("synth: priority %d references an unknown class", i)
		}
		if p.Cond == nil || !priorityAtom(p.Cond) {
			return fmt.Errorf("synth: priority %d (%s) must use true/older/smaller-arg/larger-arg", i, p)
		}
		if seenPair[[2]int{p.A, p.B}] {
			return fmt.Errorf("synth: duplicate priority rule for (c%d, c%d)", p.A, p.B)
		}
		seenPair[[2]int{p.A, p.B}] = true
		if condUsesSelfArg(p.Cond) && (len(s.Classes[p.A].Args) == 0 || len(s.Classes[p.B].Args) == 0) {
			return fmt.Errorf("synth: priority %d (%s) compares arguments of an argless class", i, p)
		}
		switch {
		case p.A == p.B:
			if _, ok := p.Cond.(True); ok {
				return fmt.Errorf("synth: priority %d (%s): an unconditional same-class rule blocks the class against itself", i, p)
			}
			selfRules = append(selfRules, p)
		default:
			if _, ok := p.Cond.(True); ok {
				crossTrue = append(crossTrue, p)
			} else {
				crossPair = append(crossPair, p)
			}
		}
	}
	if len(crossTrue) > 0 && len(crossPair) > 0 {
		return fmt.Errorf("synth: set %s mixes unconditional and pair-comparison cross-class priority rules", s.Name)
	}
	if len(crossTrue) > 0 {
		if cycle := trueCycle(len(s.Classes), crossTrue); cycle {
			return fmt.Errorf("synth: set %s: unconditional priority rules form a class cycle", s.Name)
		}
	}
	if len(crossPair) > 0 {
		measure := fmt.Sprintf("%T", crossPair[0].Cond)
		for _, p := range append(crossPair, selfRules...) {
			if fmt.Sprintf("%T", p.Cond) != measure {
				return fmt.Errorf("synth: set %s mixes priority measures (%s vs %s)", s.Name, measure, fmt.Sprintf("%T", p.Cond))
			}
		}
	}
	return nil
}

// trueCycle reports whether the unconditional-priority class graph has a
// cycle.
func trueCycle(n int, rules []PriorityWhen) bool {
	adj := make([][]int, n)
	for _, r := range rules {
		adj[r.A] = append(adj[r.A], r.B)
	}
	state := make([]int, n) // 0 unvisited, 1 in stack, 2 done
	var visit func(int) bool
	visit = func(u int) bool {
		state[u] = 1
		for _, v := range adj[u] {
			if state[v] == 1 || (state[v] == 0 && visit(v)) {
				return true
			}
		}
		state[u] = 2
		return false
	}
	for u := 0; u < n; u++ {
		if state[u] == 0 && visit(u) {
			return true
		}
	}
	return false
}

// Scheme renders the set as a core.Scheme, the same currency the
// handwritten problems use: one constraint per rule with stable IDs (x0,
// x1, … for exclusion; p0, p1, … for priority) — the derived oracle
// reports violations under exactly these IDs. A cross-class priority
// rule additionally uses request-type information (it discriminates on
// the class of the request), mirroring the readers-priority spec.
func (s *Set) Scheme() core.Scheme {
	sch := core.Scheme{Name: s.Name}
	for i, x := range s.Excludes {
		sch.Constraints = append(sch.Constraints, core.Constraint{
			ID:   fmt.Sprintf("x%d", i),
			Kind: core.Exclusion,
			Uses: x.Cond.Uses(),
			Desc: "if " + x.Cond.String() + " then exclude " + s.Classes[x.Class].Name,
		})
	}
	for i, p := range s.Priorities {
		uses := p.Cond.Uses()
		if p.A != p.B {
			uses = unionUses(uses, []core.InfoType{core.RequestType})
		}
		sch.Constraints = append(sch.Constraints, core.Constraint{
			ID:   fmt.Sprintf("p%d", i),
			Kind: core.Priority,
			Uses: uses,
			Desc: fmt.Sprintf("if %s then %s precedes %s", p.Cond, s.Classes[p.A].Name, s.Classes[p.B].Name),
		})
	}
	return sch
}

// shortInfo abbreviates an information type for shape keys.
func shortInfo(t core.InfoType) string {
	switch t {
	case core.RequestType:
		return "type"
	case core.RequestTime:
		return "time"
	case core.RequestParams:
		return "param"
	case core.SyncState:
		return "sync"
	case core.LocalState:
		return "local"
	case core.History:
		return "hist"
	}
	return "?"
}

// Shape is the set's canonical constraint shape: one token per
// constraint — kind plus the information types its condition uses —
// sorted and joined. Two sets with the same shape pose the same *kind*
// of problem, which is the aggregation key of the fuzz summary's
// expressive-power table.
func (s *Set) Shape() string {
	var toks []string
	for _, c := range s.Scheme().Constraints {
		prefix := "x:"
		if c.Kind == core.Priority {
			prefix = "p:"
		}
		var us []string
		for _, u := range c.Uses {
			us = append(us, shortInfo(u))
		}
		if len(us) == 0 {
			us = []string{"none"}
		}
		toks = append(toks, prefix+strings.Join(us, ","))
	}
	sort.Strings(toks)
	return strings.Join(toks, "+")
}

// Balanced reports whether traffic against the set must issue its
// classes in equal numbers (full cycles): true when any class moves the
// slot count or any exclusion condition depends on history or local
// state, so a surplus of one class (extra removes with nothing
// deposited, a second put before a get) could never drain.
func (s *Set) Balanced() bool {
	for _, c := range s.Classes {
		if c.SlotDelta != 0 {
			return true
		}
	}
	for _, x := range s.Excludes {
		for _, u := range x.Cond.Uses() {
			if u == core.History || u == core.LocalState {
				return true
			}
		}
	}
	return false
}

// LoadSafe reports whether the set can take open-ended traffic (package
// load) without wedging by construction. The sampler's feasibility
// witness only proves the set's own workload drains; two condition
// families are sound at that concurrency but not under arbitrary
// traffic, and are refused here:
//
//   - waiting-population exclusions (waiting(c)>=n) latch shut as soon
//     as the backlog exceeds what the set's own process counts allow;
//   - started-below-argument exclusions (started(c) < arg) wedge at
//     drain time when the remaining traffic cannot supply the count.
func (s *Set) LoadSafe() error {
	for i, x := range s.Excludes {
		unsafe := ""
		walkCond(x.Cond, func(c Cond) {
			switch a := c.(type) {
			case CountGE:
				if a.Kind == CountWaiting {
					unsafe = "waiting-population condition"
				}
			case StartedBelowArg:
				unsafe = "started-below-argument condition"
			}
		})
		if unsafe != "" {
			return fmt.Errorf("synth: %s not load-generable: exclusion x%d (%s when %s) is a %s, feasible only at the set's own concurrency",
				s.Name, i, s.Classes[x.Class].Name, x.Cond, unsafe)
		}
	}
	return nil
}

// setJSON is the canonical serialized form: conditions as their
// canonical strings, classes by name. It is write-only — consumers
// regenerate a Set from its seed rather than parsing conditions back.
type setJSON struct {
	Name       string     `json:"name"`
	Seed       int64      `json:"seed"`
	Shape      string     `json:"shape"`
	Classes    []Class    `json:"classes"`
	Excludes   []ruleJSON `json:"excludes,omitempty"`
	Priorities []ruleJSON `json:"priorities,omitempty"`
}

type ruleJSON struct {
	ID    string `json:"id"`
	Cond  string `json:"cond"`
	Class string `json:"class,omitempty"`
	Over  string `json:"over,omitempty"`
}

// MarshalJSON renders the canonical JSON form used by the golden corpus
// and the fuzz summary.
func (s *Set) MarshalJSON() ([]byte, error) {
	out := setJSON{Name: s.Name, Seed: s.Seed, Shape: s.Shape(), Classes: s.Classes}
	for i, x := range s.Excludes {
		out.Excludes = append(out.Excludes, ruleJSON{
			ID: fmt.Sprintf("x%d", i), Cond: x.Cond.String(), Class: s.Classes[x.Class].Name,
		})
	}
	for i, p := range s.Priorities {
		out.Priorities = append(out.Priorities, ruleJSON{
			ID: fmt.Sprintf("p%d", i), Cond: p.Cond.String(),
			Class: s.Classes[p.A].Name, Over: s.Classes[p.B].Name,
		})
	}
	return json.Marshal(out)
}
