package synth

import (
	"strings"
	"testing"

	"repro/internal/problems"
)

// TestLoadSafe pins the two condition families the load gate refuses and
// confirms everything else passes, including conditions that merely
// mention the refused atoms inside priority rules (priorities cannot
// carry them by construction, but the gate only inspects excludes).
func TestLoadSafe(t *testing.T) {
	base := []Class{
		{Name: "a", Procs: 2, Rounds: 2, Yields: 1},
		{Name: "b", Procs: 2, Rounds: 2, Yields: 1},
	}
	cases := []struct {
		name string
		set  Set
		want string // substring of the error, "" for safe
	}{
		{
			name: "plain exclusion is safe",
			set: Set{Name: "t0", Classes: base, Excludes: []ExcludeWhen{
				{Class: 0, Cond: CountGE{Kind: CountActive, Class: 1, N: 1}},
			}},
		},
		{
			name: "waiting-population exclusion refused",
			set: Set{Name: "t1", Classes: base, Excludes: []ExcludeWhen{
				{Class: 0, Cond: CountGE{Kind: CountWaiting, Class: 0, N: 2}},
			}},
			want: "waiting-population",
		},
		{
			name: "waiting atom nested under Or refused",
			set: Set{Name: "t2", Classes: base, Excludes: []ExcludeWhen{
				{Class: 1, Cond: Or{
					X: CountGE{Kind: CountActive, Class: 0, N: 1},
					Y: CountGE{Kind: CountWaiting, Class: 1, N: 3},
				}},
			}},
			want: "waiting-population",
		},
		{
			name: "started-below-arg exclusion refused",
			set: Set{Name: "t3", Classes: base, Excludes: []ExcludeWhen{
				{Class: 0, Cond: StartedBelowArg{Class: 1}},
			}},
			want: "started-below-argument",
		},
		{
			name: "slots and history are safe",
			set: Set{Name: "t4", Classes: base, Excludes: []ExcludeWhen{
				{Class: 0, Cond: SlotsLE{N: 0}},
				{Class: 1, Cond: LastStartedIs{Class: 1}},
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.set.LoadSafe()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("LoadSafe() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("LoadSafe() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestLoadSafeCanonical: every canonical problem the sampler mirrors is
// load-generable except the ones that genuinely consult the refused
// axes (readers-priority and fcfs wait on the waiting population only
// through priorities, which are exempt; alarm-clock's wakeme waits on
// started(tick)<arg and is refused).
func TestLoadSafeCanonical(t *testing.T) {
	for _, name := range problems.AllProblems() {
		set, ok := Canonical(name)
		if !ok {
			continue // not expressible in the grammar at all
		}
		err := set.LoadSafe()
		wantUnsafe := false
		for _, x := range set.Excludes {
			if condUsesWaiting(x.Cond) {
				wantUnsafe = true
			}
			walkCond(x.Cond, func(c Cond) {
				if _, ok := c.(StartedBelowArg); ok {
					wantUnsafe = true
				}
			})
		}
		if wantUnsafe && err == nil {
			t.Errorf("%s: LoadSafe() = nil, want refusal", name)
		}
		if !wantUnsafe && err != nil {
			t.Errorf("%s: LoadSafe() = %v, want nil", name, err)
		}
	}
}
