package synth

// The derived oracle: a constraint Set compiled mechanically into a
// judge over recorded traces, with no per-problem code. The contract
// (pinned verdict-for-verdict against the handwritten oracles by
// TestDerivedOracleAgreesWithHandwritten):
//
//   - Exclusion: at each admitted operation's Enter point, every
//     exclusion rule for its class is evaluated against the state the
//     trace shows strictly before that point (the candidate's own
//     interval excluded). A rule that holds is a violation.
//   - Priority (strict judging only): rule "A over B when cond" is
//     violated by an admitted B-operation b and an A-candidate a with
//     cond(a, b) when b entered inside a's waiting window — after a's
//     request and before a's admission (never-admitted waiters extend to
//     the end of the trace) — and some operation exited in between. The
//     release window mirrors the handwritten rw.go rule: an admission
//     decision is only attributable to the mechanism if it observably
//     made one (a release) while the favored request was waiting; like
//     the handwritten rule it has no admissibility escape.
//
// Non-strict judging (real-kernel traces) skips priority rules and any
// exclusion rule that consults the waiting population: both depend on
// request timing that a preemptive scheduler can reorder between the
// record and the mechanism.

import (
	"fmt"
	"sort"

	"repro/internal/problems"
	"repro/internal/trace"
)

// seqEnd is a sequence number beyond any recorded event (a never-admitted
// waiter "enters" past the end of the trace).
const seqEnd = int64(^uint64(0) >> 1)

func enterOrEnd(iv trace.Interval) int64 {
	if !iv.Started() {
		return seqEnd
	}
	return iv.EnterSeq
}

// anyInWindow reports whether some seq in the ascending slice lies
// strictly between lo and hi.
func anyInWindow(seqs []int64, lo, hi int64) bool {
	for _, s := range seqs {
		if s >= hi {
			return false
		}
		if s > lo {
			return true
		}
	}
	return false
}

// traceView is the StateView the trace shows strictly before sequence
// point at, with one interval (the candidate under judgment) excluded.
type traceView struct {
	set  *Set
	ivs  []trace.Interval
	cls  []int
	at   int64
	skip int
}

func (v traceView) Count(class int, kind CountKind) int {
	n := 0
	for i := range v.ivs {
		if i == v.skip || v.cls[i] != class {
			continue
		}
		iv := &v.ivs[i]
		started := iv.EnterSeq > 0 && iv.EnterSeq < v.at
		done := iv.ExitSeq > 0 && iv.ExitSeq < v.at
		switch kind {
		case CountWaiting:
			if iv.RequestSeq > 0 && iv.RequestSeq < v.at && !started {
				n++
			}
		case CountActive:
			if started && !done {
				n++
			}
		case CountStarted:
			if started {
				n++
			}
		case CountDone:
			if done {
				n++
			}
		}
	}
	return n
}

func (v traceView) Slots() int {
	s := 0
	for i := range v.ivs {
		if i == v.skip {
			continue
		}
		if v.ivs[i].ExitSeq > 0 && v.ivs[i].ExitSeq < v.at {
			s += v.set.Classes[v.cls[i]].SlotDelta
		}
	}
	return s
}

func (v traceView) LastStarted() int {
	best, bestSeq := -1, int64(0)
	for i := range v.ivs {
		if i == v.skip {
			continue
		}
		if e := v.ivs[i].EnterSeq; e > 0 && e < v.at && e > bestSeq {
			bestSeq = e
			best = v.cls[i]
		}
	}
	return best
}

// Check judges a trace against the set's constraints. strict
// additionally checks priority rules and waiting-population conditions,
// which are exact only on deterministic (SimKernel) traces.
func (s *Set) Check(tr trace.Trace, strict bool) []problems.Violation {
	ivs, err := tr.Intervals()
	if err != nil {
		return []problems.Violation{{Rule: "instrumentation", Detail: err.Error()}}
	}
	classOf := map[string]int{}
	for i, c := range s.Classes {
		classOf[c.Name] = i
	}
	cls := make([]int, len(ivs))
	for i, iv := range ivs {
		ci, ok := classOf[iv.Op]
		if !ok {
			return []problems.Violation{{Rule: "instrumentation",
				Detail: fmt.Sprintf("operation %q is not a class of set %s", iv.Op, s.Name), Seq: iv.EnterSeq}}
		}
		cls[i] = ci
	}

	var out []problems.Violation
	for i := range ivs {
		iv := &ivs[i]
		if !iv.Started() {
			continue
		}
		v := traceView{set: s, ivs: ivs, cls: cls, at: iv.EnterSeq, skip: i}
		self := Cand{Class: cls[i], Arg: iv.Arg, HasArg: iv.HasArg, Stamp: iv.RequestSeq}
		for xi, x := range s.Excludes {
			if x.Class != cls[i] {
				continue
			}
			if !strict && condUsesWaiting(x.Cond) {
				continue
			}
			if x.Cond.Eval(v, self, nil) {
				out = append(out, problems.Violation{
					Rule:   fmt.Sprintf("x%d", xi),
					Detail: fmt.Sprintf("%s admitted while excluded (%s)", iv, x.Cond),
					Seq:    iv.EnterSeq,
				})
			}
		}
	}

	if strict {
		exits := s.exitSeqs(tr)
		for pi, r := range s.Priorities {
			for ai := range ivs {
				a := &ivs[ai]
				if cls[ai] != r.A || a.RequestSeq == 0 {
					continue
				}
				aEnd := enterOrEnd(*a)
				ac := Cand{Class: cls[ai], Arg: a.Arg, HasArg: a.HasArg, Stamp: a.RequestSeq}
				for bi := range ivs {
					b := &ivs[bi]
					if bi == ai || cls[bi] != r.B || !b.Started() {
						continue
					}
					if b.EnterSeq <= a.RequestSeq || b.EnterSeq >= aEnd {
						continue
					}
					if !anyInWindow(exits, a.RequestSeq, b.EnterSeq) {
						continue
					}
					bc := Cand{Class: cls[bi], Arg: b.Arg, HasArg: b.HasArg, Stamp: b.RequestSeq}
					v := traceView{set: s, ivs: ivs, cls: cls, at: b.EnterSeq, skip: bi}
					if !r.Cond.Eval(v, ac, &bc) {
						continue
					}
					out = append(out, problems.Violation{
						Rule:   fmt.Sprintf("p%d", pi),
						Detail: fmt.Sprintf("%s admitted over waiting %s (%s)", b, a, r),
						Seq:    b.EnterSeq,
					})
				}
			}
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// exitSeqs collects the ascending Exit sequence numbers of the set's
// operations — the observable release points at which a mechanism makes
// admission decisions.
func (s *Set) exitSeqs(tr trace.Trace) []int64 {
	names := map[string]bool{}
	for _, c := range s.Classes {
		names[c.Name] = true
	}
	var out []int64
	for _, e := range tr {
		if e.Kind == trace.KindExit && names[e.Op] {
			out = append(out, e.Seq)
		}
	}
	return out
}
