package synth

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/solutions"
	"repro/internal/trace"
)

var canonicalProblems = []string{
	problems.NameBoundedBuffer,
	problems.NameFCFS,
	problems.NameReadersPriority,
	problems.NameWritersPriority,
	problems.NameFCFSRW,
	problems.NameOneSlot,
	problems.NameAlarmClock,
	problems.NameDisk,
}

// handVerdict judges a trace with the handwritten oracle for the
// problem, restricted to the constraints the grammar encodes:
// bounded-buffer and one-slot completeness take the standard workload's
// expected totals only when std is true (crafted traces are judged
// structure-only), and disk is judged exclusion-only (SCAN priority is
// outside the grammar, see Canonical).
func handVerdict(problem string, tr trace.Trace, std bool) []problems.Violation {
	switch problem {
	case problems.NameBoundedBuffer:
		expected := 0
		if std {
			expected = solutions.StdBBConfig().TotalItems()
		}
		return problems.CheckBoundedBuffer(tr, solutions.StdBufferCap, expected)
	case problems.NameFCFS:
		return problems.CheckFCFS(tr, true)
	case problems.NameReadersPriority, problems.NameWritersPriority, problems.NameFCFSRW:
		return problems.CheckRW(problem, tr, true)
	case problems.NameOneSlot:
		expected := 0
		if std {
			expected = solutions.StdOneSlotConfig().TotalItems()
		}
		return problems.CheckOneSlot(tr, expected)
	case problems.NameAlarmClock:
		return problems.CheckAlarmClock(tr)
	case problems.NameDisk:
		return problems.CheckDisk(tr, solutions.StdDiskStart, false)
	}
	panic("unknown problem " + problem)
}

// TestDerivedOracleAgreesWithHandwritten is the property the whole
// subsystem stands on: encode each canonical problem as a constraint
// set, judge real solution traces with both the handwritten oracle and
// the mechanically derived one, and require the same verdict. The trace
// corpus is every mechanism suite × every canonical problem × three
// schedule policies.
func TestDerivedOracleAgreesWithHandwritten(t *testing.T) {
	policies := []struct {
		name string
		mk   func() kernel.Policy
	}{
		{"fifo", kernel.FIFO},
		{"rand1", func() kernel.Policy { return kernel.Random(1) }},
		{"rand2", func() kernel.Policy { return kernel.Random(2) }},
	}
	for _, problem := range canonicalProblems {
		set, ok := Canonical(problem)
		if !ok {
			t.Fatalf("no canonical encoding for %s", problem)
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("%s: canonical encoding invalid: %v", problem, err)
		}
		for _, suite := range solutions.All() {
			for _, pc := range policies {
				name := fmt.Sprintf("%s/%s/%s", problem, suite.Mechanism, pc.name)
				k := kernel.NewSim(kernel.WithPolicy(pc.mk()))
				tr, _, err := solutions.RunStandard(k, suite, problem, true)
				if err != nil {
					t.Errorf("%s: run failed: %v", name, err)
					continue
				}
				hand := handVerdict(problem, tr, true)
				derived := set.Check(tr, true)
				if (len(hand) == 0) != (len(derived) == 0) {
					t.Errorf("%s: verdicts disagree: handwritten %v, derived %v",
						name, hand, derived)
				}
			}
		}
	}
}

// traceBuilder assembles well-formed traces by hand for the
// counterexample half of the agreement property.
type traceBuilder struct {
	seq int64
	tr  trace.Trace
}

func (b *traceBuilder) ev(proc int, kind trace.Kind, op string, arg int64) *traceBuilder {
	b.seq++
	e := trace.Event{
		Seq:    b.seq,
		ProcID: proc,
		Proc:   fmt.Sprintf("p%d#%d", proc, proc),
		Kind:   kind,
		Op:     op,
	}
	if arg != trace.NoArg {
		e.Arg, e.HasArg = arg, true
	}
	b.tr = append(b.tr, e)
	return b
}

func (b *traceBuilder) req(proc int, op string, arg int64) *traceBuilder {
	return b.ev(proc, trace.KindRequest, op, arg)
}
func (b *traceBuilder) enter(proc int, op string, arg int64) *traceBuilder {
	return b.ev(proc, trace.KindEnter, op, arg)
}
func (b *traceBuilder) exit(proc int, op string, arg int64) *traceBuilder {
	return b.ev(proc, trace.KindExit, op, arg)
}

// TestDerivedOracleAgreesOnCraftedTraces pins agreement where it
// matters most: traces that violate exactly one constraint, plus clean
// serialized controls. Both oracles must flag the violating traces and
// pass the controls.
func TestDerivedOracleAgreesOnCraftedTraces(t *testing.T) {
	n := trace.NoArg
	cases := []struct {
		problem string
		name    string
		bad     bool
		build   func(b *traceBuilder)
	}{
		{problems.NameFCFS, "overtake", true, func(b *traceBuilder) {
			b.req(0, "use", n).enter(0, "use", n)
			b.req(1, "use", n)
			b.req(2, "use", n)
			b.exit(0, "use", n) // release while p1 and p2 wait
			b.enter(2, "use", n).exit(2, "use", n)
			b.enter(1, "use", n).exit(1, "use", n)
		}},
		{problems.NameFCFS, "in order", false, func(b *traceBuilder) {
			b.req(0, "use", n).enter(0, "use", n)
			b.req(1, "use", n)
			b.exit(0, "use", n)
			b.enter(1, "use", n).exit(1, "use", n)
		}},
		{problems.NameReadersPriority, "write overlaps read", true, func(b *traceBuilder) {
			b.req(0, "read", n).enter(0, "read", n)
			b.req(1, "write", n).enter(1, "write", n).exit(1, "write", n)
			b.exit(0, "read", n)
		}},
		{problems.NameReadersPriority, "writer jumps waiting reader", true, func(b *traceBuilder) {
			b.req(0, "write", n).enter(0, "write", n)
			b.req(1, "read", n)  // waits for the active writer
			b.req(2, "write", n) // second writer
			b.exit(0, "write", n)
			b.enter(2, "write", n).exit(2, "write", n) // jumped the reader
			b.enter(1, "read", n).exit(1, "read", n)
		}},
		{problems.NameWritersPriority, "writers first honored", false, func(b *traceBuilder) {
			b.req(0, "read", n).enter(0, "read", n)
			b.req(1, "write", n)
			b.exit(0, "read", n)
			b.enter(1, "write", n).exit(1, "write", n)
		}},
		{problems.NameFCFSRW, "later writer jumps earlier writer", true, func(b *traceBuilder) {
			b.req(0, "read", n).enter(0, "read", n)
			b.req(1, "write", n)
			b.req(2, "write", n)
			b.exit(0, "read", n)
			b.enter(2, "write", n).exit(2, "write", n)
			b.enter(1, "write", n).exit(1, "write", n)
		}},
		{problems.NameBoundedBuffer, "deposit and remove overlap", true, func(b *traceBuilder) {
			b.req(0, "deposit", 1).enter(0, "deposit", 1)
			b.req(1, "remove", 1).enter(1, "remove", 1)
			b.exit(0, "deposit", 1)
			b.exit(1, "remove", 1)
		}},
		{problems.NameBoundedBuffer, "serialized transfer", false, func(b *traceBuilder) {
			b.req(0, "deposit", 1).enter(0, "deposit", 1).exit(0, "deposit", 1)
			b.req(1, "remove", 1).enter(1, "remove", 1).exit(1, "remove", 1)
		}},
		{problems.NameOneSlot, "two puts in a row", true, func(b *traceBuilder) {
			b.req(0, "put", 1).enter(0, "put", 1).exit(0, "put", 1)
			b.req(1, "put", 2).enter(1, "put", 2).exit(1, "put", 2)
		}},
		{problems.NameOneSlot, "put then get", false, func(b *traceBuilder) {
			b.req(0, "put", 1).enter(0, "put", 1).exit(0, "put", 1)
			b.req(1, "get", 1).enter(1, "get", 1).exit(1, "get", 1)
		}},
		{problems.NameAlarmClock, "woken early", true, func(b *traceBuilder) {
			b.req(0, "tick", 1).enter(0, "tick", 1).exit(0, "tick", 1)
			b.req(1, "wakeme", 2).enter(1, "wakeme", 2).exit(1, "wakeme", 2)
		}},
		{problems.NameAlarmClock, "woken on time", false, func(b *traceBuilder) {
			b.req(1, "wakeme", 2)
			b.req(0, "tick", 1).enter(0, "tick", 1).exit(0, "tick", 1)
			b.req(0, "tick", 2).enter(0, "tick", 2).exit(0, "tick", 2)
			b.enter(1, "wakeme", 2).exit(1, "wakeme", 2)
		}},
		{problems.NameDisk, "overlapping seeks", true, func(b *traceBuilder) {
			b.req(0, "seek", 10).enter(0, "seek", 10)
			b.req(1, "seek", 20).enter(1, "seek", 20).exit(1, "seek", 20)
			b.exit(0, "seek", 10)
		}},
		{problems.NameDisk, "serialized seeks", false, func(b *traceBuilder) {
			b.req(0, "seek", 10).enter(0, "seek", 10).exit(0, "seek", 10)
			b.req(1, "seek", 20).enter(1, "seek", 20).exit(1, "seek", 20)
		}},
	}
	for _, tc := range cases {
		set, ok := Canonical(tc.problem)
		if !ok {
			t.Fatalf("no canonical encoding for %s", tc.problem)
		}
		b := &traceBuilder{}
		tc.build(b)
		hand := handVerdict(tc.problem, b.tr, false)
		derived := set.Check(b.tr, true)
		if got := len(hand) > 0; got != tc.bad {
			t.Errorf("%s/%s: handwritten verdict bad=%v, want %v (%v)",
				tc.problem, tc.name, got, tc.bad, hand)
		}
		if got := len(derived) > 0; got != tc.bad {
			t.Errorf("%s/%s: derived verdict bad=%v, want %v (%v)",
				tc.problem, tc.name, got, tc.bad, derived)
		}
	}
}

// TestDerivedOracleRejectsForeignOps pins the instrumentation guard.
func TestDerivedOracleRejectsForeignOps(t *testing.T) {
	set, _ := Canonical(problems.NameFCFS)
	b := &traceBuilder{}
	b.req(0, "launder", trace.NoArg).enter(0, "launder", trace.NoArg).exit(0, "launder", trace.NoArg)
	vs := set.Check(b.tr, true)
	if len(vs) != 1 || vs[0].Rule != "instrumentation" {
		t.Fatalf("Check = %v, want one instrumentation violation", vs)
	}
}
