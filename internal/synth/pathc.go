package synth

// Compiling constraint sets to path expressions — or refusing to. Path
// expressions declare admissible operation sequences; they have no
// access to request time, request parameters, or queue state, so only a
// slice of the grammar maps onto them. PathSources either produces a
// list of path-expression sources whose conjunction enforces the set's
// constraints, or reports the first constraint outside the vocabulary.
// That refusal is a result, not a failure: cmd/syncfuzz records it as
// "inexpressible", which is exactly Bloom's §5 verdict generalized from
// anecdote (readers-priority) to a measured rate over the sampled grid.
//
// The expressible fragment:
//
//   - a slot-coupled producer/consumer pair (SlotsGE(cap) on the +1
//     class, SlotsLE(0) on the -1 class) → "path cap : prod ; cons end";
//   - a strict-alternation pair (last(p) excluding p, !last(p)
//     excluding q) → "path 1 : p ; q end";
//   - symmetric exclusion cliques over active-count atoms
//     (Or-combinations of active(c)>=1) → "path 1 : a , {b} , … end",
//     burst braces for classes without self-exclusion;
//   - a lone self bound active(c)>=n → "path n : c end".
//
// Everything else — priority rules of any kind, waiting/started/done
// counts, argument conditions, asymmetric exclusion, And/Not
// combinations — is inexpressible.

import (
	"fmt"
	"sort"
	"strings"
)

// PathSources compiles the set into path-expression sources, or reports
// why the constraint set is outside the path-expression vocabulary.
func PathSources(s *Set) ([]string, error) {
	if len(s.Priorities) > 0 {
		p := s.Priorities[0]
		return nil, fmt.Errorf("pathexpr: priority rule %s: path expressions order operations only by sequence shape, not by %s", p, p.Cond)
	}

	type slotRule struct {
		class, cap int
	}
	var prod, cons *slotRule
	// Alternation pair: altA carries "last(altA) excludes altA", altB
	// carries "!(last(altBRef)) excludes altB"; they must agree.
	altA, altB, altBRef := -1, -1, -1
	edges := map[[2]int]bool{} // [target, activeClass]
	inGraph := map[int]bool{}
	bounds := map[int]int{}

	for _, x := range s.Excludes {
		switch c := x.Cond.(type) {
		case SlotsGE:
			if s.Classes[x.Class].SlotDelta == 1 && prod == nil {
				prod = &slotRule{x.Class, c.N}
				continue
			}
		case SlotsLE:
			if c.N == 0 && s.Classes[x.Class].SlotDelta == -1 && cons == nil {
				cons = &slotRule{x.Class, 0}
				continue
			}
		case LastStartedIs:
			if c.Class == x.Class && altA < 0 {
				altA = x.Class
				continue
			}
		case Not:
			if l, ok := c.X.(LastStartedIs); ok && l.Class != x.Class && altB < 0 {
				altB, altBRef = x.Class, l.Class
				continue
			}
		case CountGE:
			if c.Kind == CountActive && c.N >= 2 && c.Class == x.Class {
				if _, dup := bounds[x.Class]; !dup {
					bounds[x.Class] = c.N
					continue
				}
			}
		}
		atoms, err := activeAtoms(x.Cond)
		if err != nil {
			return nil, fmt.Errorf("pathexpr: rule %s: %v", x, err)
		}
		for _, a := range atoms {
			edges[[2]int{x.Class, a}] = true
			inGraph[x.Class] = true
			inGraph[a] = true
		}
	}

	var paths []string

	if (prod == nil) != (cons == nil) {
		return nil, fmt.Errorf("pathexpr: set %s: an unpaired slot rule has no sequence-shape equivalent", s.Name)
	}
	if prod != nil {
		paths = append(paths, fmt.Sprintf("path %d : %s ; %s end",
			prod.cap, s.Classes[prod.class].Name, s.Classes[cons.class].Name))
	}

	if altA >= 0 || altB >= 0 {
		if altA < 0 || altB < 0 || altBRef != altA {
			return nil, fmt.Errorf("pathexpr: set %s: an unpaired alternation rule has no sequence-shape equivalent", s.Name)
		}
		paths = append(paths, fmt.Sprintf("path 1 : %s ; %s end",
			s.Classes[altA].Name, s.Classes[altB].Name))
	}

	for class := range bounds {
		if inGraph[class] {
			return nil, fmt.Errorf("pathexpr: set %s: class %s mixes a concurrency bound with cross-class exclusion",
				s.Name, s.Classes[class].Name)
		}
	}
	for class := 0; class < len(s.Classes); class++ {
		if n, ok := bounds[class]; ok {
			paths = append(paths, fmt.Sprintf("path %d : %s end", n, s.Classes[class].Name))
		}
	}

	comps, err := cliques(s, edges, inGraph)
	if err != nil {
		return nil, err
	}
	for _, comp := range comps {
		var terms []string
		for _, class := range comp {
			if edges[[2]int{class, class}] {
				terms = append(terms, s.Classes[class].Name)
			} else {
				terms = append(terms, "{"+s.Classes[class].Name+"}")
			}
		}
		paths = append(paths, fmt.Sprintf("path 1 : %s end", strings.Join(terms, " , ")))
	}
	return paths, nil
}

// activeAtoms flattens an exclusion condition into active(c)>=1 atoms,
// accepting only Or-combinations of them.
func activeAtoms(c Cond) ([]int, error) {
	switch v := c.(type) {
	case CountGE:
		if v.Kind != CountActive {
			return nil, fmt.Errorf("%s counts %s requests, which operation sequences cannot observe", v, v.Kind)
		}
		if v.N != 1 {
			return nil, fmt.Errorf("%s thresholds the active count inside a disjunction", v)
		}
		return []int{v.Class}, nil
	case Or:
		x, err := activeAtoms(v.X)
		if err != nil {
			return nil, err
		}
		y, err := activeAtoms(v.Y)
		if err != nil {
			return nil, err
		}
		return append(x, y...), nil
	}
	return nil, fmt.Errorf("condition %s is outside the sequence-shape vocabulary", c)
}

// cliques partitions the exclusion graph into connected components and
// requires each to be a complete symmetric digraph — the only shape
// "path 1 : x , y , … end" can express. Components are returned in
// class-index order.
func cliques(s *Set, edges map[[2]int]bool, inGraph map[int]bool) ([][]int, error) {
	seen := map[int]bool{}
	var comps [][]int
	for class := 0; class < len(s.Classes); class++ {
		if !inGraph[class] || seen[class] {
			continue
		}
		comp := []int{}
		stack := []int{class}
		seen[class] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for v := 0; v < len(s.Classes); v++ {
				if v == u || seen[v] {
					continue
				}
				if edges[[2]int{u, v}] || edges[[2]int{v, u}] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		for _, u := range comp {
			for _, v := range comp {
				if u != v && !edges[[2]int{u, v}] {
					return nil, fmt.Errorf("pathexpr: set %s: asymmetric exclusion (%s excluded while %s runs, but not the converse) has no sequence-shape equivalent",
						s.Name, s.Classes[v].Name, s.Classes[u].Name)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps, nil
}
