package synth

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/problems"
)

func TestPathSourcesBoundedBuffer(t *testing.T) {
	set, _ := Canonical(problems.NameBoundedBuffer)
	got, err := PathSources(set)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"path 3 : deposit ; remove end",
		"path 1 : deposit , remove end",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PathSources = %q, want %q", got, want)
	}
}

func TestPathSourcesOneSlot(t *testing.T) {
	set, _ := Canonical(problems.NameOneSlot)
	got, err := PathSources(set)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"path 1 : put ; get end",
		"path 1 : put , get end",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PathSources = %q, want %q", got, want)
	}
}

func TestPathSourcesRWExclusionUsesBurst(t *testing.T) {
	// The exclusion skeleton alone (no priority rule) is the classic
	// readers–writers path: readers in a burst, writers serialized.
	set := rwBase("rw-exclusion-only")
	got, err := PathSources(set)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"path 1 : {read} , write end"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PathSources = %q, want %q", got, want)
	}
}

func TestPathSourcesInexpressible(t *testing.T) {
	cases := []struct {
		name    string
		problem string
		reason  string
	}{
		{"priority", problems.NameReadersPriority, "priority"},
		{"request time", problems.NameFCFS, "priority"},
		{"argument-dependent", problems.NameAlarmClock, "vocabulary"},
	}
	for _, tc := range cases {
		set, _ := Canonical(tc.problem)
		_, err := PathSources(set)
		if err == nil {
			t.Errorf("%s: PathSources accepted %s", tc.name, tc.problem)
			continue
		}
		if !strings.Contains(err.Error(), tc.reason) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.reason)
		}
	}
}

func TestPathSourcesAsymmetricExclusion(t *testing.T) {
	set := &Set{
		Name: "asym",
		Classes: []Class{
			{Name: "a", Procs: 1, Rounds: 1},
			{Name: "b", Procs: 1, Rounds: 1},
		},
		// a excluded while b is active, but not the converse.
		Excludes: []ExcludeWhen{{Cond: CountGE{Class: 1, Kind: CountActive, N: 1}, Class: 0}},
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err := PathSources(set)
	if err == nil || !strings.Contains(err.Error(), "asymmetric") {
		t.Fatalf("PathSources = %v, want asymmetric-exclusion refusal", err)
	}
}

func TestPathSourcesSelfBound(t *testing.T) {
	set := &Set{
		Name: "bound",
		Classes: []Class{
			{Name: "a", Procs: 3, Rounds: 1},
		},
		Excludes: []ExcludeWhen{{Cond: CountGE{Class: 0, Kind: CountActive, N: 2}, Class: 0}},
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := PathSources(set)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"path 2 : a end"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PathSources = %q, want %q", got, want)
	}
}
