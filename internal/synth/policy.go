package synth

// The Gate is the reference admission policy for a constraint Set: which
// waiting candidate may start, given the populations the conditions
// consult. Every mechanism adapter (resource.go) implements the same
// policy with its own primitives — the Gate holds the shared state and
// decision logic; the adapters contribute only blocking and wakeup. It
// is deliberately not thread-safe: each adapter serializes access with
// the mechanism under test (monitor possession, region exclusion, a
// mutex, the CSP server process), which is exactly the encapsulation the
// paper's modularity criteria talk about.

// Waiter is one pending or admitted operation known to a Gate.
type Waiter struct {
	Cand
	// Aux carries the adapter's per-waiter payload (a condition
	// variable, a private semaphore, a grant channel).
	Aux any
	// Enter, when set, is invoked by Grant — inside the adapter's
	// critical section, so the recorded Enter event is atomic with the
	// admission decision and the trace the oracle judges shows exactly
	// the state the Gate decided on.
	Enter   func()
	granted bool
}

// Granted reports whether the waiter has been admitted.
func (w *Waiter) Granted() bool { return w.granted }

// Gate tracks the constraint-relevant state of one generated resource.
type Gate struct {
	set      *Set
	stamp    int64
	waiting  []*Waiter // arrival (stamp) order
	waitingN []int
	active   []int
	started  []int
	done     []int
	slots    int
	last     int
}

// NewGate creates a Gate for the set.
func NewGate(set *Set) *Gate {
	n := len(set.Classes)
	return &Gate{
		set:      set,
		waitingN: make([]int, n),
		active:   make([]int, n),
		started:  make([]int, n),
		done:     make([]int, n),
		last:     -1,
	}
}

// Count implements StateView.
func (g *Gate) Count(class int, kind CountKind) int {
	switch kind {
	case CountWaiting:
		return g.waitingN[class]
	case CountActive:
		return g.active[class]
	case CountStarted:
		return g.started[class]
	case CountDone:
		return g.done[class]
	}
	return 0
}

// Slots implements StateView.
func (g *Gate) Slots() int { return g.slots }

// LastStarted implements StateView.
func (g *Gate) LastStarted() int { return g.last }

// gateView is the Gate as a candidate's condition sees it: the candidate
// itself is excluded from the waiting population, matching the derived
// oracle, which excludes the candidate's own interval from the state at
// its admission point.
type gateView struct {
	g    *Gate
	self *Waiter
}

func (v gateView) Count(class int, kind CountKind) int {
	n := v.g.Count(class, kind)
	if kind == CountWaiting && v.self != nil && v.self.Class == class {
		n--
	}
	return n
}
func (v gateView) Slots() int       { return v.g.Slots() }
func (v gateView) LastStarted() int { return v.g.LastStarted() }

// Arrive registers a new candidate and returns its waiter.
func (g *Gate) Arrive(class int, arg int64, hasArg bool) *Waiter {
	g.stamp++
	w := &Waiter{Cand: Cand{Class: class, Arg: arg, HasArg: hasArg, Stamp: g.stamp}}
	g.waiting = append(g.waiting, w)
	g.waitingN[class]++
	return w
}

// Admissible reports whether any exclusion rule currently bars w.
func (g *Gate) Admissible(w *Waiter) bool {
	v := gateView{g, w}
	for _, x := range g.set.Excludes {
		if x.Class == w.Class && x.Cond.Eval(v, w.Cand, nil) {
			return false
		}
	}
	return true
}

// MayStart reports whether w may be admitted now: it is admissible and
// no other waiting candidate holds a priority rule over it. The check is
// deliberately conservative — a favored waiter blocks w even while the
// favored waiter is itself inadmissible — mirroring the derived oracle's
// release-window rule, which has no admissibility escape either.
func (g *Gate) MayStart(w *Waiter) bool {
	if !g.Admissible(w) {
		return false
	}
	v := gateView{g, w}
	for _, r := range g.set.Priorities {
		if r.B != w.Class {
			continue
		}
		for _, o := range g.waiting {
			if o == w || o.Class != r.A {
				continue
			}
			if r.Cond.Eval(v, o.Cand, &w.Cand) {
				return false
			}
		}
	}
	return true
}

// Grant admits w: waiting → active, stamped into history.
func (g *Gate) Grant(w *Waiter) {
	for i, o := range g.waiting {
		if o == w {
			g.waiting = append(g.waiting[:i], g.waiting[i+1:]...)
			break
		}
	}
	g.waitingN[w.Class]--
	g.active[w.Class]++
	g.started[w.Class]++
	g.last = w.Class
	w.granted = true
	if w.Enter != nil {
		w.Enter()
	}
}

// Release completes an operation of class: active → done, slot delta
// applied.
func (g *Gate) Release(class int) {
	g.active[class]--
	g.done[class]++
	g.slots += g.set.Classes[class].SlotDelta
}

// NextGrant returns the first waiting candidate in arrival order that
// MayStart, or nil. Arrival order breaks ties the priority rules leave
// open, so every adapter (and the feasibility witness) agrees on the
// default admission order.
func (g *Gate) NextGrant() *Waiter {
	for _, w := range g.waiting {
		if g.MayStart(w) {
			return w
		}
	}
	return nil
}

// WaitingCount is the number of unadmitted candidates.
func (g *Gate) WaitingCount() int { return len(g.waiting) }
