package synth

// Scenario emission: a Set plus a mechanism name becomes the same
// (program, oracle) pair solutions.StandardProgram produces for the
// canonical problems, so generated problems flow through exploration,
// replay, and sealing without any new plumbing.

import (
	"repro/internal/explore"
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/trace"
)

// Program emits the set's workload under the mechanism as an
// exploration program, paired with the set's strict derived oracle.
// The error is the mechanism's Supports verdict (pathexpr refusing an
// inexpressible set).
func Program(set *Set, mech string) (explore.Program, explore.Oracle, error) {
	if err := Supports(mech, set); err != nil {
		return nil, nil, err
	}
	prog := func(k kernel.Kernel, rec *trace.Recorder) {
		res, err := NewResource(mech, set, k)
		if err != nil {
			// Supports passed above; a failure here is a synth bug.
			panic(err)
		}
		for ci := range set.Classes {
			c := set.Classes[ci]
			for pi := 0; pi < c.Procs; pi++ {
				k.Spawn(c.Name, func(p *kernel.Proc) {
					if c.Delay > 0 {
						p.Sleep(c.Delay)
					}
					for round := 0; round < c.Rounds; round++ {
						arg, has := c.Arg(pi, round)
						ra := arg
						if !has {
							ra = trace.NoArg
						}
						h := Hooks{
							Request: func() { rec.Request(p, c.Name, ra) },
							// The Enter/Exit pair is split across hook
							// closures by design: the adapter fires Enter
							// inside the grant decision and Exit before the
							// release, under its own exclusion, so the
							// recorded interval is atomic with the gate's
							// view (see Hooks). Do invokes them exactly
							// once each, in order, around body.
							//synclint:allow bracket: intervals open in the Enter hook and close in the Exit hook; pairing is the Resource.Do contract, not lexical structure
							Enter: func() { rec.Enter(p, c.Name, ra) },
							//synclint:allow bracket: closes the interval opened by the Enter hook above
							Exit: func() { rec.Exit(p, c.Name, ra) },
						}
						res.Do(p, ci, arg, has, h, func() {
							for y := 0; y < c.Yields; y++ {
								p.Yield()
							}
						})
						for gap := 0; gap < c.Gap; gap++ {
							p.Yield()
						}
					}
				})
			}
		}
	}
	oracle := func(tr trace.Trace) []problems.Violation {
		return set.Check(tr, true)
	}
	return prog, oracle, nil
}
