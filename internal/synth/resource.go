package synth

// One adapter per mechanism: each implements the Gate admission policy
// with that mechanism's own primitives, so a generated problem runs the
// same way the handwritten solutions do — the mechanism under test does
// the blocking and waking, the Gate only decides. The naive-gate row is
// a deliberately broken control: it checks admissibility but ignores
// priority rules and arrival wakeups, so the fuzz table has a row that
// *should* accumulate violations and deadlocks — evidence the derived
// oracles have teeth.
//
// Instrumentation contract: the trace events the oracle judges must be
// atomic with the state transitions they witness, or the oracle would
// flag scheduling windows (a waiter granted before a just-finished
// operation's Exit lands in the trace) instead of policy bugs. Hooks
// carries the three record points into the adapter, which fires each one
// inside its own exclusion: Request at Arrive, Enter at Grant (via
// Waiter.Enter), Exit immediately before Release.

import (
	"fmt"
	"sync"

	"repro/internal/ccr"
	"repro/internal/csp"
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/pathexpr"
	"repro/internal/semaphore"
	"repro/internal/serializer"
)

// Hooks are the trace record points Do fires inside the mechanism's
// exclusion. Any of the three may be nil.
type Hooks struct {
	Request func() // at Arrive — registration with the admission policy
	Enter   func() // at Grant — the admission decision itself
	Exit    func() // immediately before Release
}

func (h Hooks) request() {
	if h.Request != nil {
		h.Request()
	}
}
func (h Hooks) enter() {
	if h.Enter != nil {
		h.Enter()
	}
}
func (h Hooks) exit() {
	if h.Exit != nil {
		h.Exit()
	}
}

// Resource runs one operation of a generated problem under a mechanism:
// block until the constraints admit the operation, run body, release.
type Resource interface {
	Do(p *kernel.Proc, class int, arg int64, hasArg bool, h Hooks, body func())
}

// NaiveGate is the broken control mechanism (not part of the paper's
// six): admissibility without priorities, release-only wakeups.
const NaiveGate = "naive-gate"

// Mechanisms lists the mechanism names NewResource accepts: the paper's
// six plus the naive-gate control.
func Mechanisms() []string {
	return []string{"semaphore", "ccr", "pathexpr", "monitor", "serializer", "csp", NaiveGate}
}

// Supports reports whether the mechanism can take on the set at all.
// Only pathexpr ever refuses — its vocabulary is sequence shapes
// (pathc.go); the others express any valid set via their adapters.
func Supports(mech string, set *Set) error {
	switch mech {
	case "semaphore", "ccr", "monitor", "serializer", "csp", NaiveGate:
		return nil
	case "pathexpr":
		_, err := PathSources(set)
		return err
	}
	return fmt.Errorf("synth: unknown mechanism %q", mech)
}

// NewResource builds the mechanism's adapter for the set. The kernel is
// needed only by csp (its gate is a server process).
func NewResource(mech string, set *Set, k kernel.Kernel) (Resource, error) {
	if err := Supports(mech, set); err != nil {
		return nil, err
	}
	switch mech {
	case "monitor":
		return &monitorResource{m: monitor.New(set.Name), g: NewGate(set)}, nil
	case "semaphore":
		return &semResource{mu: semaphore.NewMutex(), g: NewGate(set)}, nil
	case "ccr":
		return &ccrResource{region: ccr.New(set.Name), g: NewGate(set)}, nil
	case "csp":
		return newCSPResource(set, k), nil
	case "serializer":
		return newSerializerResource(set), nil
	case "pathexpr":
		return newPathResource(set)
	case NaiveGate:
		return newNaiveResource(set), nil
	}
	return nil, fmt.Errorf("synth: unknown mechanism %q", mech)
}

// --- monitor ---------------------------------------------------------

// monitorResource keeps the Gate as monitor state; every blocked waiter
// has a private condition, and whoever changes the state (arrival or
// release) runs the grant loop and signals the newly admitted.
type monitorResource struct {
	m *monitor.Monitor
	g *Gate
}

func (r *monitorResource) grantAll(p *kernel.Proc, self *Waiter) {
	for {
		w := r.g.NextGrant()
		if w == nil {
			return
		}
		r.g.Grant(w)
		if w != self {
			w.Aux.(*monitor.Condition).Signal(p)
		}
	}
}

func (r *monitorResource) Do(p *kernel.Proc, class int, arg int64, hasArg bool, h Hooks, body func()) {
	r.m.Enter(p)
	h.request()
	w := r.g.Arrive(class, arg, hasArg)
	w.Enter = h.Enter
	cond := r.m.NewCondition(fmt.Sprintf("grant-%d", w.Stamp))
	w.Aux = cond
	r.grantAll(p, w)
	for !w.Granted() {
		cond.Wait(p)
	}
	r.m.Exit(p)
	body()
	r.m.Enter(p)
	h.exit()
	r.g.Release(class)
	r.grantAll(p, nil)
	r.m.Exit(p)
}

// --- semaphore -------------------------------------------------------

// semResource guards the Gate with a mutex and parks each waiter on a
// private binary semaphore: the exact-baton idiom — every grant decided
// under the lock is paid with exactly one V.
type semResource struct {
	mu *semaphore.Mutex
	g  *Gate
}

func (r *semResource) grantAll(self *Waiter) []*semaphore.Semaphore {
	var wake []*semaphore.Semaphore
	for {
		w := r.g.NextGrant()
		if w == nil {
			return wake
		}
		r.g.Grant(w)
		if w != self {
			wake = append(wake, w.Aux.(*semaphore.Semaphore))
		}
	}
}

func (r *semResource) Do(p *kernel.Proc, class int, arg int64, hasArg bool, h Hooks, body func()) {
	r.mu.Lock(p)
	h.request()
	w := r.g.Arrive(class, arg, hasArg)
	w.Enter = h.Enter
	w.Aux = semaphore.New(0)
	wake := r.grantAll(w)
	granted := w.Granted()
	r.mu.Unlock(p)
	for _, s := range wake {
		s.V()
	}
	if !granted {
		w.Aux.(*semaphore.Semaphore).P(p)
	}
	body()
	r.mu.Lock(p)
	h.exit()
	r.g.Release(class)
	wake = r.grantAll(nil)
	r.mu.Unlock(p)
	for _, s := range wake {
		s.V()
	}
}

// --- ccr -------------------------------------------------------------

// ccrResource is the shortest adapter: the Gate is the region's shared
// state and MayStart is literally the guard. The region re-evaluates
// guards at every exit, so releases and arrivals wake waiters for free.
type ccrResource struct {
	region *ccr.Region
	g      *Gate
}

func (r *ccrResource) Do(p *kernel.Proc, class int, arg int64, hasArg bool, h Hooks, body func()) {
	var w *Waiter
	r.region.Execute(p, ccr.True, func() {
		h.request()
		w = r.g.Arrive(class, arg, hasArg)
		w.Enter = h.Enter
		if r.g.MayStart(w) {
			r.g.Grant(w)
		}
	})
	if !w.Granted() {
		r.region.Execute(p, func() bool { return r.g.MayStart(w) }, func() {
			r.g.Grant(w)
		})
	}
	body()
	r.region.Execute(p, ccr.True, func() {
		h.exit()
		r.g.Release(class)
	})
}

// --- csp -------------------------------------------------------------

// cspResource hides the Gate inside a server process: clients send a
// request carrying a private grant channel, the server loops on
// alternation over requests and releases, granting by rendezvous. After
// every communication the server drains the channels' pending senders
// (the same discipline as the handwritten rwServer) so the grant policy
// always decides on the complete announced state.
type cspResource struct {
	net *csp.Net
	req *csp.Chan
	rel *csp.Chan
}

type cspReq struct {
	class   int
	arg     int64
	hasArg  bool
	grant   *csp.Chan
	request func()
	enter   func()
}

type cspRel struct {
	class int
	exit  func()
}

func newCSPResource(set *Set, k kernel.Kernel) *cspResource {
	r := &cspResource{net: csp.NewNet()}
	r.req = r.net.NewChan("req")
	r.rel = r.net.NewChan("rel")
	k.SpawnDaemon(set.Name+"-gate", func(p *kernel.Proc) {
		g := NewGate(set)
		cases := []csp.Case{{Chan: r.req}, {Chan: r.rel}}
		apply := func(i int, v any) {
			if i == 0 {
				m := v.(cspReq)
				if m.request != nil {
					m.request()
				}
				w := g.Arrive(m.class, m.arg, m.hasArg)
				w.Enter = m.enter
				w.Aux = m.grant
			} else {
				m := v.(cspRel)
				if m.exit != nil {
					m.exit()
				}
				g.Release(m.class)
			}
		}
		drain := func() {
			for r.req.Pending()+r.rel.Pending() > 0 {
				apply(csp.Select(p, cases)) // immediate: a sender waits
			}
		}
		for {
			apply(csp.Select(p, cases))
			drain()
			for {
				w := g.NextGrant()
				if w == nil {
					break
				}
				g.Grant(w)
				w.Aux.(*csp.Chan).Send(p, nil)
				drain()
			}
		}
	})
	return r
}

func (r *cspResource) Do(p *kernel.Proc, class int, arg int64, hasArg bool, h Hooks, body func()) {
	grant := r.net.NewChan(fmt.Sprintf("grant-%d", p.ID()))
	r.req.Send(p, cspReq{class: class, arg: arg, hasArg: hasArg, grant: grant,
		request: h.Request, enter: h.Enter})
	grant.Recv(p)
	body()
	r.rel.Send(p, cspRel{class: class, exit: h.Exit})
}

// --- serializer ------------------------------------------------------

// serializerResource holds one queue and one crowd per class; the
// guarantee is MayStart. The Gate gets its own mutex because guarantees
// are evaluated under the serializer's internal lock at release points
// (lock order serializer → gate, never the reverse). Rank carries the
// class's self-priority measure into the queue ordering; head-only
// eligibility is the serializer's honest limitation and may surface as
// a deadlock finding when a blocked head shields an admissible waiter.
type serializerResource struct {
	s      *serializer.Serializer
	queues []*serializer.Queue
	crowds []*serializer.Crowd
	mu     sync.Mutex
	g      *Gate
}

func newSerializerResource(set *Set) *serializerResource {
	r := &serializerResource{s: serializer.New(set.Name), g: NewGate(set)}
	for _, c := range set.Classes {
		r.queues = append(r.queues, r.s.NewQueue(c.Name))
		r.crowds = append(r.crowds, r.s.NewCrowd(c.Name))
	}
	return r
}

// rank maps a class's self-priority rule onto the queue's rank order
// (ascending): smaller-arg first, larger-arg first, or arrival order.
func (r *serializerResource) rank(class int, w *Waiter) int64 {
	for _, pr := range r.g.set.Priorities {
		if pr.A != class || pr.B != class {
			continue
		}
		switch pr.Cond.(type) {
		case SmallerArg:
			return w.Arg
		case LargerArg:
			return -w.Arg
		}
	}
	return 0
}

func (r *serializerResource) Do(p *kernel.Proc, class int, arg int64, hasArg bool, h Hooks, body func()) {
	r.s.Enter(p)
	r.mu.Lock()
	h.request()
	w := r.g.Arrive(class, arg, hasArg)
	w.Enter = h.Enter
	r.mu.Unlock()
	// Between the guarantee turning true (evaluated at a possession
	// release) and this process resuming with possession, crowd members
	// may have released and shifted the state, so re-check under the
	// gate lock and requeue on a stale pass.
	for {
		//synclint:allow holdwait: the queues are serializer-owned (built via r.s.NewQueue), so EnqueueRank releases possession while parked — the analyzer's component binding only sees composite-literal fields, not slice appends
		r.queues[class].EnqueueRank(p, r.rank(class, w), func() bool {
			r.mu.Lock()
			ok := r.g.MayStart(w)
			r.mu.Unlock()
			return ok
		})
		r.mu.Lock()
		if r.g.MayStart(w) {
			r.g.Grant(w)
			r.mu.Unlock()
			break
		}
		r.mu.Unlock()
	}
	r.crowds[class].Join(p, body)
	r.mu.Lock()
	h.exit()
	r.g.Release(class)
	r.mu.Unlock()
	r.s.Exit(p)
}

// --- pathexpr --------------------------------------------------------

// pathResource wraps each constrained operation in the compiled path
// set; unconstrained classes run their bodies directly. Expressible sets
// never consult the waiting population (pathc.go admits only active-
// count, slot, and alternation conditions), so recording Request on the
// client side is race-free here.
type pathResource struct {
	set   *pathexpr.Set
	names []string
}

func newPathResource(s *Set) (*pathResource, error) {
	srcs, err := PathSources(s)
	if err != nil {
		return nil, err
	}
	r := &pathResource{}
	for _, c := range s.Classes {
		r.names = append(r.names, c.Name)
	}
	if len(srcs) > 0 {
		ps, err := pathexpr.Compile(srcs...)
		if err != nil {
			return nil, fmt.Errorf("synth: compiling generated paths: %w", err)
		}
		r.set = ps
	}
	return r, nil
}

func (r *pathResource) Do(p *kernel.Proc, class int, _ int64, _ bool, h Hooks, body func()) {
	name := r.names[class]
	wrapped := func() {
		h.enter()
		body()
		h.exit()
	}
	h.request()
	if r.set != nil && r.set.Constrained(name) {
		r.set.Exec(p, name, wrapped)
	} else {
		wrapped()
	}
}

// --- naive-gate (broken control) -------------------------------------

// naiveResource is what a first attempt without a discipline looks
// like: it busy-parks on admissibility alone (priority rules ignored →
// ordering violations) and wakes parked processes only on release,
// never on arrival (missed wakeups → deadlock findings).
type naiveResource struct {
	mu     *semaphore.Mutex
	gates  []*semaphore.Semaphore
	parked []int
	g      *Gate
}

func newNaiveResource(set *Set) *naiveResource {
	r := &naiveResource{mu: semaphore.NewMutex(), g: NewGate(set)}
	for range set.Classes {
		r.gates = append(r.gates, semaphore.New(0))
		r.parked = append(r.parked, 0)
	}
	return r
}

func (r *naiveResource) Do(p *kernel.Proc, class int, arg int64, hasArg bool, h Hooks, body func()) {
	r.mu.Lock(p)
	h.request()
	w := r.g.Arrive(class, arg, hasArg)
	w.Enter = h.Enter
	for !r.g.Admissible(w) {
		r.parked[class]++
		r.mu.Unlock(p)
		r.gates[class].P(p)
		r.mu.Lock(p)
		r.parked[class]--
	}
	r.g.Grant(w)
	r.mu.Unlock(p)
	body()
	r.mu.Lock(p)
	h.exit()
	r.g.Release(class)
	for ci := range r.gates {
		for i := 0; i < r.parked[ci]; i++ {
			r.gates[ci].V()
		}
	}
	r.mu.Unlock(p)
}
