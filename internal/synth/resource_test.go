package synth

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/kernel"
	"repro/internal/problems"
	"repro/internal/trace"
)

// TestAdaptersRunSampledSetsCleanly drives sampled sets under every
// correct adapter on two schedules and requires an oracle-clean trace.
// An honest constraint-induced stall (the sampler's witness is a
// heuristic, and the serializer's head-only eligibility can wedge) is
// tolerated as ErrDeadlock but never an oracle violation; anything else
// is an adapter bug.
func TestAdaptersRunSampledSetsCleanly(t *testing.T) {
	policies := []struct {
		name string
		mk   func() kernel.Policy
	}{
		{"fifo", kernel.FIFO},
		{"rand7", func() kernel.Policy { return kernel.Random(7) }},
	}
	deadlocks, runs := 0, 0
	for seed := int64(1); seed <= 12; seed++ {
		set := Generate(seed)
		for _, mech := range Mechanisms() {
			if mech == NaiveGate {
				continue // broken by design, covered below
			}
			if err := Supports(mech, set); err != nil {
				continue // pathexpr refusing is a verdict, not a failure
			}
			prog, oracle, err := Program(set, mech)
			if err != nil {
				t.Fatalf("seed %d/%s: %v", seed, mech, err)
			}
			for _, pc := range policies {
				runs++
				k := kernel.NewSim(kernel.WithPolicy(pc.mk()))
				rec := trace.NewRecorder(k)
				prog(k, rec)
				if err := k.Run(); err != nil {
					if errors.Is(err, kernel.ErrDeadlock) {
						deadlocks++
						continue
					}
					t.Errorf("seed %d/%s/%s: kernel error: %v", seed, mech, pc.name, err)
					continue
				}
				if vs := oracle(rec.Events()); len(vs) > 0 {
					t.Errorf("seed %d/%s/%s: oracle violations on a correct adapter: %v",
						seed, mech, pc.name, vs)
				}
			}
		}
	}
	// A few honest stalls are expected; a wedge-dominated corpus is not.
	if deadlocks*5 > runs {
		t.Fatalf("%d of %d runs deadlocked — constraint filters or adapters are off", deadlocks, runs)
	}
}

// TestCanonicalSetsRunCleanly runs the canonical encodings' own
// workloads (not the handwritten solutions) under every adapter.
func TestCanonicalSetsRunCleanly(t *testing.T) {
	for _, problem := range canonicalProblems {
		set, _ := Canonical(problem)
		for _, mech := range Mechanisms() {
			if mech == NaiveGate {
				continue
			}
			if err := Supports(mech, set); err != nil {
				continue
			}
			prog, oracle, err := Program(set, mech)
			if err != nil {
				t.Fatalf("%s/%s: %v", problem, mech, err)
			}
			k := kernel.NewSim()
			rec := trace.NewRecorder(k)
			prog(k, rec)
			if err := k.Run(); err != nil {
				t.Errorf("%s/%s: kernel error: %v", problem, mech, err)
				continue
			}
			if vs := oracle(rec.Events()); len(vs) > 0 {
				t.Errorf("%s/%s: violations: %v", problem, mech, vs)
			}
		}
	}
}

// TestNaiveGateIsCaughtAndSealed is the teeth check: exploration must
// catch the broken control on the readers-priority encoding (it ignores
// priority rules), and the finding must survive the shrink/seal/verify
// pipeline as a replayable artifact.
func TestNaiveGateIsCaughtAndSealed(t *testing.T) {
	set, _ := Canonical(problems.NameReadersPriority)
	prog, oracle, err := Program(set, NaiveGate)
	if err != nil {
		t.Fatal(err)
	}
	res := explore.Run(prog, oracle, explore.Options{
		RandomRuns: 400,
		DFSRuns:    0,
		Workers:    1,
		Prune:      true,
		Shrink:     true,
	})
	if !res.Found {
		t.Fatalf("exploration did not catch the naive gate (%d runs)", res.Runs)
	}
	sched := res.MinSchedule
	if len(sched) == 0 {
		sched = res.Schedule
	}
	f := explore.NewSchedFile(NaiveGate, set.Name, "synth", sched)
	if err := f.Seal(prog, oracle); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, _, err := f.Verify(prog, oracle); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestSupportsVerdicts(t *testing.T) {
	rp, _ := Canonical(problems.NameReadersPriority)
	if err := Supports("pathexpr", rp); err == nil {
		t.Error("pathexpr should refuse the readers-priority encoding (priority rule)")
	} else if !strings.Contains(err.Error(), "priority") {
		t.Errorf("refusal should cite the priority rule: %v", err)
	}
	bb, _ := Canonical(problems.NameBoundedBuffer)
	if err := Supports("pathexpr", bb); err != nil {
		t.Errorf("pathexpr should accept the bounded-buffer encoding: %v", err)
	}
	if err := Supports("quantum", bb); err == nil {
		t.Error("unknown mechanism should be rejected")
	}
}
