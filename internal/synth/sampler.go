package synth

// The seeded sampler: draw a candidate Set from the constraint grid,
// then keep it only if it survives three filters —
//
//   1. Validate: structural well-formedness plus the priority-shape
//      rules (grammar.go).
//   2. Vacuity probe: every exclusion condition must evaluate both true
//      and false somewhere across a few hundred randomly drawn
//      plausible states; a condition that never fires adds nothing, and
//      one that always fires excludes its class permanently.
//   3. Feasibility witness: under several arrival orders (canonical,
//      reversed, seeded shuffles) the reference Gate must be able to
//      drain the full candidate population one grant at a time. A stall
//      means the constraints themselves can wedge — contradictory
//      exclusions, a priority ring, an argument no admissible state
//      accepts.
//
// The filters are heuristics, not proofs: a Set can pass the witness
// and still deadlock under an adversarial interleaving mid-run. That is
// deliberate — exploration treats such deadlocks as findings, and they
// are findings about the *constraints*, which is exactly what a fuzzer
// is for. Rejection resamples with a remixed seed, up to maxAttempts,
// then falls back to a canonical mutual-exclusion+FCFS set so Generate
// is total: every seed yields a runnable problem, byte-identical across
// runs and hosts.

import (
	"fmt"
	"math/rand"
)

const maxAttempts = 64

// mix derives the per-attempt RNG seed from the problem seed. SplitMix64
// finalizer: consecutive seeds must not yield correlated streams.
func mix(seed int64, attempt int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	z ^= z >> 31
	z *= 0xd6e8feb86659fd93
	z ^= z >> 27
	v := int64(z & 0x7fffffffffffffff)
	if v == 0 {
		v = 1
	}
	return v
}

// Generate returns the constraint set for a seed: the first sampled
// candidate that survives validation, the vacuity probe, and the
// feasibility witness, or the deterministic fallback after maxAttempts
// rejections. The same seed always yields the same Set.
func Generate(seed int64) *Set {
	for attempt := 0; attempt < maxAttempts; attempt++ {
		r := rand.New(rand.NewSource(mix(seed, attempt)))
		s := sampleOnce(r)
		if s == nil {
			continue
		}
		s.Name = fmt.Sprintf("synth-%d", seed)
		s.Seed = seed
		if s.Validate() != nil {
			continue
		}
		if !vacuityOK(s, r) {
			continue
		}
		if !feasible(s, r) {
			continue
		}
		return s
	}
	return fallbackSet(seed)
}

// Sample generates n sets for seeds seed, seed+1, …, seed+n-1.
func Sample(seed int64, n int) []*Set {
	out := make([]*Set, n)
	for i := range out {
		out[i] = Generate(seed + int64(i))
	}
	return out
}

// fallbackSet is the guaranteed-valid set used when every attempt for a
// seed is rejected: single-class mutual exclusion with FCFS service.
func fallbackSet(seed int64) *Set {
	return &Set{
		Name: fmt.Sprintf("synth-%d", seed),
		Seed: seed,
		Classes: []Class{
			{Name: "a", Procs: 2, Rounds: 2, Yields: 1, Gap: 1},
		},
		Excludes: []ExcludeWhen{
			{Cond: CountGE{Class: 0, Kind: CountActive, N: 1}, Class: 0},
		},
		Priorities: []PriorityWhen{
			{Cond: OlderReq{}, A: 0, B: 0},
		},
	}
}

var classNames = []string{"a", "b", "c"}

// maxTotalOps bounds the candidate population so exploration's schedule
// space stays tractable per generated problem.
const maxTotalOps = 7

func totalOps(s *Set) int {
	n := 0
	for _, c := range s.Classes {
		n += c.Ops()
	}
	return n
}

// sampleOnce draws one candidate Set, or nil when the draw is
// structurally hopeless (no constraints at all).
func sampleOnce(r *rand.Rand) *Set {
	n := 2 + r.Intn(2)
	s := &Set{}
	for i := 0; i < n; i++ {
		c := Class{
			Name:   classNames[i],
			Procs:  1 + r.Intn(2),
			Rounds: 1 + r.Intn(2),
			Yields: 1 + r.Intn(2),
			Gap:    r.Intn(2),
			Delay:  int64(r.Intn(3)),
		}
		if r.Float64() < 0.4 {
			na := 2 + r.Intn(2)
			for j := 0; j < na; j++ {
				c.Args = append(c.Args, 1+int64(r.Intn(5)))
			}
		}
		s.Classes = append(s.Classes, c)
	}
	for totalOps(s) > maxTotalOps {
		bi := 0
		for i := range s.Classes {
			if s.Classes[i].Ops() > s.Classes[bi].Ops() {
				bi = i
			}
		}
		if s.Classes[bi].Rounds > 1 {
			s.Classes[bi].Rounds--
		} else {
			s.Classes[bi].Procs--
		}
	}

	// Structured shapes first: a slot-coupled producer/consumer pair
	// (bounded-buffer family) or a strict alternation pair (one-slot
	// family). Mutually exclusive — their history/local-state rules
	// interact badly when stacked on the same classes.
	switch {
	case r.Float64() < 0.3:
		s.Classes[0].SlotDelta = 1
		s.Classes[1].SlotDelta = -1
		capacity := 1 + r.Intn(2)
		s.Excludes = append(s.Excludes,
			ExcludeWhen{Cond: SlotsGE{capacity}, Class: 0},
			ExcludeWhen{Cond: SlotsLE{0}, Class: 1})
	case r.Float64() < 0.2 && s.Classes[0].Ops() == s.Classes[1].Ops():
		s.Excludes = append(s.Excludes,
			ExcludeWhen{Cond: LastStartedIs{0}, Class: 0},
			ExcludeWhen{Cond: Not{LastStartedIs{0}}, Class: 1})
	}

	// Free-form exclusion rules on top.
	nx := 1 + r.Intn(3)
	for i := 0; i < nx; i++ {
		t := r.Intn(n)
		if c := sampleCond(r, s, t, 0); c != nil {
			s.Excludes = append(s.Excludes, ExcludeWhen{Cond: c, Class: t})
		}
	}
	if len(s.Excludes) == 0 {
		return nil
	}

	samplePriorities(r, s)
	return s
}

// sampleCond draws an exclusion condition for class target: combinators
// to depth 2 over the atom pool. Started/Done counters are reachable
// only through StartedBelowArg — a bare "exclude while started(c)>=n"
// latches permanently and would drown the corpus in rejections.
func sampleCond(r *rand.Rand, s *Set, target, depth int) Cond {
	if depth < 2 && r.Float64() < 0.3 {
		switch r.Intn(3) {
		case 0:
			if x := sampleCond(r, s, target, depth+1); x != nil {
				return Not{x}
			}
		case 1:
			x := sampleCond(r, s, target, depth+1)
			y := sampleCond(r, s, target, depth+1)
			if x != nil && y != nil {
				return And{x, y}
			}
		default:
			x := sampleCond(r, s, target, depth+1)
			y := sampleCond(r, s, target, depth+1)
			if x != nil && y != nil {
				return Or{x, y}
			}
		}
		return nil
	}
	n := len(s.Classes)
	hasArgs := len(s.Classes[target].Args) > 0
	for tries := 0; tries < 4; tries++ {
		switch r.Intn(6) {
		case 0, 1, 2:
			return CountGE{Class: r.Intn(n), Kind: CountKind(r.Intn(2)), N: 1 + r.Intn(2)}
		case 3:
			if hasArgs {
				if r.Intn(2) == 0 {
					return ArgGE{N: 2 + int64(r.Intn(3))}
				}
				return ArgLE{N: 2 + int64(r.Intn(3))}
			}
		case 4:
			if hasArgs {
				return StartedBelowArg{Class: r.Intn(n)}
			}
		default:
			return LastStartedIs{Class: r.Intn(n)}
		}
	}
	return CountGE{Class: r.Intn(n), Kind: CountActive, N: 1}
}

// samplePriorities draws one of the priority archetypes Validate proves
// deadlock-free: none, downhill unconditional, global FCFS, global
// argument order, or per-class self rules.
func samplePriorities(r *rand.Rand, s *Set) {
	n := len(s.Classes)
	switch r.Intn(5) {
	case 0: // none
	case 1: // downhill unconditional: acyclic by construction (i < j)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.6 {
					s.Priorities = append(s.Priorities, PriorityWhen{Cond: True{}, A: i, B: j})
				}
			}
		}
	case 2: // FCFS over a subset of ordered pairs (self pairs included)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Float64() < 0.5 {
					s.Priorities = append(s.Priorities, PriorityWhen{Cond: OlderReq{}, A: i, B: j})
				}
			}
		}
	case 3: // single argument-order measure over arg-carrying pairs
		var m Cond = SmallerArg{}
		if r.Intn(2) == 0 {
			m = LargerArg{}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if len(s.Classes[i].Args) == 0 || len(s.Classes[j].Args) == 0 {
					continue
				}
				if r.Float64() < 0.5 {
					s.Priorities = append(s.Priorities, PriorityWhen{Cond: m, A: i, B: j})
				}
			}
		}
	default: // self-FCFS per class
		for i := 0; i < n; i++ {
			if r.Float64() < 0.5 {
				s.Priorities = append(s.Priorities, PriorityWhen{Cond: OlderReq{}, A: i, B: i})
			}
		}
	}
}

// probeView is a fabricated StateView for the vacuity probe: plausible
// per-class populations, not necessarily reachable ones.
type probeView struct {
	waiting, active, started, done []int
	slots, last                    int
}

func (v probeView) Count(class int, kind CountKind) int {
	switch kind {
	case CountWaiting:
		return v.waiting[class]
	case CountActive:
		return v.active[class]
	case CountStarted:
		return v.started[class]
	case CountDone:
		return v.done[class]
	}
	return 0
}
func (v probeView) Slots() int       { return v.slots }
func (v probeView) LastStarted() int { return v.last }

func randomView(s *Set, r *rand.Rand) probeView {
	n := len(s.Classes)
	v := probeView{
		waiting: make([]int, n),
		active:  make([]int, n),
		started: make([]int, n),
		done:    make([]int, n),
		last:    -1,
	}
	for i, c := range s.Classes {
		lim := c.Ops()
		if lim > 4 {
			lim = 4
		}
		st := r.Intn(lim + 1)
		d := r.Intn(st + 1)
		v.started[i] = st
		v.done[i] = d
		v.active[i] = st - d
		v.waiting[i] = r.Intn(4)
		v.slots += d * c.SlotDelta
		if st > 0 && r.Intn(2) == 0 {
			v.last = i
		}
	}
	return v
}

func randomCand(s *Set, class int, r *rand.Rand) Cand {
	c := Cand{Class: class, Stamp: int64(1 + r.Intn(16))}
	if args := s.Classes[class].Args; len(args) > 0 {
		c.Arg = args[r.Intn(len(args))]
		c.HasArg = true
	}
	return c
}

// vacuityOK rejects sets with an exclusion condition that is constant
// across the probe distribution.
func vacuityOK(s *Set, r *rand.Rand) bool {
	const probes = 200
	sawTrue := make([]bool, len(s.Excludes))
	sawFalse := make([]bool, len(s.Excludes))
	for p := 0; p < probes; p++ {
		v := randomView(s, r)
		for xi, x := range s.Excludes {
			if x.Cond.Eval(v, randomCand(s, x.Class, r), nil) {
				sawTrue[xi] = true
			} else {
				sawFalse[xi] = true
			}
		}
	}
	for xi := range s.Excludes {
		if !sawTrue[xi] || !sawFalse[xi] {
			return false
		}
	}
	return true
}

// candidates enumerates every operation the set's workload will issue,
// in canonical class-major order.
func candidates(s *Set) []Cand {
	var out []Cand
	for ci, c := range s.Classes {
		for p := 0; p < c.Procs; p++ {
			for round := 0; round < c.Rounds; round++ {
				arg, has := c.Arg(p, round)
				out = append(out, Cand{Class: ci, Arg: arg, HasArg: has})
			}
		}
	}
	return out
}

// drains reports whether the reference Gate can admit and complete the
// whole population, arriving in the given order, one serialized grant
// at a time.
func drains(s *Set, order []Cand) bool {
	g := NewGate(s)
	for _, c := range order {
		g.Arrive(c.Class, c.Arg, c.HasArg)
	}
	for g.WaitingCount() > 0 {
		w := g.NextGrant()
		if w == nil {
			return false
		}
		g.Grant(w)
		g.Release(w.Class)
	}
	return true
}

// feasible runs the drain witness under the canonical order, its
// reverse, and six seeded shuffles.
func feasible(s *Set, r *rand.Rand) bool {
	base := candidates(s)
	if !drains(s, base) {
		return false
	}
	rev := make([]Cand, len(base))
	for i, c := range base {
		rev[len(base)-1-i] = c
	}
	if !drains(s, rev) {
		return false
	}
	for k := 0; k < 6; k++ {
		ord := append([]Cand(nil), base...)
		r.Shuffle(len(ord), func(i, j int) { ord[i], ord[j] = ord[j], ord[i] })
		if !drains(s, ord) {
			return false
		}
	}
	return true
}
