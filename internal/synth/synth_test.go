package synth

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func mustSet(t *testing.T, s *Set) *Set {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate(%s): %v", s.Name, err)
	}
	return s
}

func TestValidateRejectsMalformedSets(t *testing.T) {
	twoClasses := []Class{
		{Name: "a", Procs: 1, Rounds: 1},
		{Name: "b", Procs: 1, Rounds: 1},
	}
	cases := []struct {
		name string
		set  *Set
		want string // substring of the error
	}{
		{"no classes", &Set{Name: "x"}, "no classes"},
		{"duplicate names", &Set{Classes: []Class{
			{Name: "a", Procs: 1, Rounds: 1}, {Name: "a", Procs: 1, Rounds: 1},
		}}, "duplicate"},
		{"zero procs", &Set{Classes: []Class{{Name: "a", Rounds: 1}}}, "positive"},
		{"exclude out of range", &Set{Classes: twoClasses,
			Excludes: []ExcludeWhen{{Cond: True{}, Class: 7}}}, "unknown class"},
		{"pair cond in exclude", &Set{Classes: twoClasses,
			Excludes: []ExcludeWhen{{Cond: OlderReq{}, Class: 0}}}, "pair condition"},
		{"arg cond on argless class", &Set{Classes: twoClasses,
			Excludes: []ExcludeWhen{{Cond: ArgGE{N: 2}, Class: 0}}}, "argless"},
		{"stateful priority cond", &Set{Classes: twoClasses,
			Excludes:   []ExcludeWhen{{Cond: CountGE{0, CountActive, 1}, Class: 0}},
			Priorities: []PriorityWhen{{Cond: CountGE{0, CountActive, 1}, A: 0, B: 1}}},
			"must use true/older"},
		{"unconditional self rule", &Set{Classes: twoClasses,
			Excludes:   []ExcludeWhen{{Cond: CountGE{0, CountActive, 1}, Class: 0}},
			Priorities: []PriorityWhen{{Cond: True{}, A: 0, B: 0}}}, "blocks the class"},
		{"duplicate pair rule", &Set{Classes: twoClasses,
			Excludes: []ExcludeWhen{{Cond: CountGE{0, CountActive, 1}, Class: 0}},
			Priorities: []PriorityWhen{
				{Cond: OlderReq{}, A: 0, B: 1}, {Cond: OlderReq{}, A: 0, B: 1},
			}}, "duplicate priority"},
		{"true cycle", &Set{Classes: twoClasses,
			Excludes: []ExcludeWhen{{Cond: CountGE{0, CountActive, 1}, Class: 0}},
			Priorities: []PriorityWhen{
				{Cond: True{}, A: 0, B: 1}, {Cond: True{}, A: 1, B: 0},
			}}, "cycle"},
		{"mixed measures", &Set{Classes: []Class{
			{Name: "a", Procs: 1, Rounds: 1, Args: []int64{1}},
			{Name: "b", Procs: 1, Rounds: 1, Args: []int64{2}},
		},
			Excludes: []ExcludeWhen{{Cond: CountGE{0, CountActive, 1}, Class: 0}},
			Priorities: []PriorityWhen{
				{Cond: SmallerArg{}, A: 0, B: 1}, {Cond: LargerArg{}, A: 1, B: 0},
			}}, "mixes priority measures"},
	}
	for _, tc := range cases {
		err := tc.set.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the set", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestGateEnforcesExclusionAndPriority(t *testing.T) {
	s := mustSet(t, &Set{
		Name: "gate-test",
		Classes: []Class{
			{Name: "r", Procs: 2, Rounds: 1},
			{Name: "w", Procs: 2, Rounds: 1},
		},
		Excludes: []ExcludeWhen{
			{Cond: CountGE{Class: 1, Kind: CountActive, N: 1}, Class: 0},
			{Cond: Or{CountGE{0, CountActive, 1}, CountGE{1, CountActive, 1}}, Class: 1},
		},
		Priorities: []PriorityWhen{{Cond: True{}, A: 0, B: 1}},
	})
	g := NewGate(s)

	w1 := g.Arrive(1, 0, false)
	if !g.MayStart(w1) {
		t.Fatal("first writer should start on an idle resource")
	}
	g.Grant(w1)

	r1 := g.Arrive(0, 0, false)
	w2 := g.Arrive(1, 0, false)
	if g.MayStart(r1) {
		t.Fatal("reader must be excluded while a writer is active")
	}
	if g.MayStart(w2) {
		t.Fatal("second writer must be excluded while the first is active")
	}

	g.Release(1)
	if g.MayStart(w2) {
		t.Fatal("writer must yield to the waiting reader (priority)")
	}
	if got := g.NextGrant(); got != r1 {
		t.Fatalf("NextGrant = %v, want the waiting reader", got)
	}
	g.Grant(r1)
	if g.MayStart(w2) {
		t.Fatal("writer still excluded while the reader is active")
	}
	g.Release(0)
	if !g.MayStart(w2) {
		t.Fatal("writer should start once the reader completed")
	}
}

func TestGateSlotAndHistoryState(t *testing.T) {
	s := mustSet(t, &Set{
		Name: "slots-test",
		Classes: []Class{
			{Name: "dep", Procs: 1, Rounds: 3, SlotDelta: 1},
			{Name: "rem", Procs: 1, Rounds: 3, SlotDelta: -1},
		},
		Excludes: []ExcludeWhen{
			{Cond: SlotsGE{1}, Class: 0},
			{Cond: SlotsLE{0}, Class: 1},
		},
	})
	g := NewGate(s)
	rem := g.Arrive(1, 0, false)
	if g.MayStart(rem) {
		t.Fatal("remove must wait on an empty buffer")
	}
	dep := g.Arrive(0, 0, false)
	if !g.MayStart(dep) {
		t.Fatal("deposit should start on an empty buffer")
	}
	g.Grant(dep)
	g.Release(0)
	if g.LastStarted() != 0 || g.Slots() != 1 {
		t.Fatalf("after one deposit: last=%d slots=%d", g.LastStarted(), g.Slots())
	}
	dep2 := g.Arrive(0, 0, false)
	if g.MayStart(dep2) {
		t.Fatal("second deposit must wait at capacity 1")
	}
	if !g.MayStart(rem) {
		t.Fatal("remove should start once a slot is filled")
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		a, err := json.Marshal(Generate(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := json.Marshal(Generate(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\n%s", seed, a, b)
		}
	}
}

func TestGeneratedSetsAreValidAndFeasible(t *testing.T) {
	shapes := map[string]bool{}
	fallbacks := 0
	for seed := int64(1); seed <= 120; seed++ {
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: generated set invalid: %v", seed, err)
		}
		if !drains(s, candidates(s)) {
			t.Fatalf("seed %d: generated set does not drain", seed)
		}
		shapes[s.Shape()] = true
		if len(s.Classes) == 1 && len(s.Excludes) == 1 && len(s.Priorities) == 1 {
			fallbacks++
		}
	}
	// The sampler must actually sample the grid, not collapse to the
	// fallback: expect real shape diversity over 120 seeds.
	if len(shapes) < 10 {
		t.Fatalf("only %d distinct shapes over 120 seeds: %v", len(shapes), shapes)
	}
	if fallbacks > 30 {
		t.Fatalf("%d of 120 seeds hit the deterministic fallback", fallbacks)
	}
}

func TestShapeAndSchemeStability(t *testing.T) {
	s := mustSet(t, &Set{
		Name: "shape-test",
		Classes: []Class{
			{Name: "read", Procs: 1, Rounds: 1},
			{Name: "write", Procs: 1, Rounds: 1},
		},
		Excludes: []ExcludeWhen{
			{Cond: CountGE{Class: 1, Kind: CountActive, N: 1}, Class: 0},
		},
		Priorities: []PriorityWhen{{Cond: True{}, A: 0, B: 1}},
	})
	if got, want := s.Shape(), "p:type+x:sync"; got != want {
		t.Errorf("Shape() = %q, want %q", got, want)
	}
	sch := s.Scheme()
	if len(sch.Constraints) != 2 {
		t.Fatalf("Scheme has %d constraints, want 2", len(sch.Constraints))
	}
	if sch.Constraints[0].ID != "x0" || sch.Constraints[1].ID != "p0" {
		t.Errorf("constraint IDs = %s, %s", sch.Constraints[0].ID, sch.Constraints[1].ID)
	}
}
