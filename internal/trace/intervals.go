package trace

import "fmt"

// Interval is one completed (or still-open) operation execution,
// reconstructed from a trace by matching each process's Request/Enter/Exit
// events.
type Interval struct {
	ProcID     int
	Proc       string
	Op         string
	Arg        int64
	RequestSeq int64 // 0 if the solution did not record a request event
	EnterSeq   int64
	ExitSeq    int64 // 0 while the operation is still executing at trace end
}

// Open reports whether the operation had not exited by the end of the trace.
func (iv Interval) Open() bool { return iv.ExitSeq == 0 }

// OverlapsExecution reports whether the two executions' Enter..Exit spans
// intersect. Open intervals extend to the end of the trace.
func (iv Interval) OverlapsExecution(other Interval) bool {
	aEnd, bEnd := iv.ExitSeq, other.ExitSeq
	if iv.Open() {
		aEnd = int64(^uint64(0) >> 1)
	}
	if other.Open() {
		bEnd = int64(^uint64(0) >> 1)
	}
	return iv.EnterSeq < bEnd && other.EnterSeq < aEnd
}

func (iv Interval) String() string {
	return fmt.Sprintf("%s %s(%d) req@%d enter@%d exit@%d", iv.Proc, iv.Op, iv.Arg, iv.RequestSeq, iv.EnterSeq, iv.ExitSeq)
}

// Intervals reconstructs operation executions from the trace. Matching is
// per process: a Request is attached to the next Enter with the same
// process and op; an Exit closes the most recent open Enter with the same
// process and op (so properly nested executions are supported). The result
// is ordered by EnterSeq. An error is reported for unmatched Exit events or
// mismatched nesting, which indicate an instrumentation bug in a solution.
func (t Trace) Intervals() ([]Interval, error) {
	type key struct {
		proc int
		op   string
	}
	pendingReq := map[key][]Event{} // FIFO of requests awaiting their Enter
	openStack := map[key][]int{}    // indices into out of open intervals
	var out []Interval

	for _, e := range t {
		k := key{e.ProcID, e.Op}
		switch e.Kind {
		case KindRequest:
			pendingReq[k] = append(pendingReq[k], e)
		case KindEnter:
			iv := Interval{
				ProcID:   e.ProcID,
				Proc:     e.Proc,
				Op:       e.Op,
				Arg:      e.Arg,
				EnterSeq: e.Seq,
			}
			if reqs := pendingReq[k]; len(reqs) > 0 {
				iv.RequestSeq = reqs[0].Seq
				if iv.Arg == 0 {
					iv.Arg = reqs[0].Arg
				}
				pendingReq[k] = reqs[1:]
			}
			out = append(out, iv)
			openStack[k] = append(openStack[k], len(out)-1)
		case KindExit:
			st := openStack[k]
			if len(st) == 0 {
				return nil, fmt.Errorf("trace: exit without enter: %s", e)
			}
			idx := st[len(st)-1]
			openStack[k] = st[:len(st)-1]
			out[idx].ExitSeq = e.Seq
		case KindMark:
			// annotations do not affect intervals
		}
	}
	return out, nil
}

// MustIntervals is Intervals panicking on malformed traces; for use in
// tests and benchmarks where instrumentation is known good.
func (t Trace) MustIntervals() []Interval {
	ivs, err := t.Intervals()
	if err != nil {
		panic(err)
	}
	return ivs
}

// OverlappingPairs returns every pair of executions whose Enter..Exit spans
// intersect, excluding pairs executed by the same process (a process cannot
// overlap itself; nested instrumentation would be reported spuriously).
func OverlappingPairs(ivs []Interval) [][2]Interval {
	var out [][2]Interval
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].ProcID == ivs[j].ProcID {
				continue
			}
			if ivs[i].OverlapsExecution(ivs[j]) {
				out = append(out, [2]Interval{ivs[i], ivs[j]})
			}
		}
	}
	return out
}
