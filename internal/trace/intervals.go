package trace

import (
	"fmt"
	"sort"
)

// Interval is one operation execution — completed, still-open, or never
// admitted — reconstructed from a trace by matching each process's
// Request/Enter/Exit events.
type Interval struct {
	ProcID     int
	Proc       string
	Op         string
	Arg        int64
	HasArg     bool  // whether any matched event carried an argument
	RequestSeq int64 // 0 if the solution did not record a request event
	EnterSeq   int64 // 0 if the request was never admitted by trace end
	ExitSeq    int64 // 0 while the operation is still executing at trace end
}

// Open reports whether the operation had not exited by the end of the trace.
func (iv Interval) Open() bool { return iv.ExitSeq == 0 }

// Started reports whether the operation was admitted (reached Enter). A
// request-only interval — a waiter still blocked at trace end — has
// Started() == false; it waited but never executed.
func (iv Interval) Started() bool { return iv.EnterSeq != 0 }

// OverlapsExecution reports whether the two executions' Enter..Exit spans
// intersect. Open intervals extend to the end of the trace; an interval
// that never started executes nothing and overlaps nothing.
func (iv Interval) OverlapsExecution(other Interval) bool {
	if !iv.Started() || !other.Started() {
		return false
	}
	aEnd, bEnd := iv.ExitSeq, other.ExitSeq
	if iv.Open() {
		aEnd = int64(^uint64(0) >> 1)
	}
	if other.Open() {
		bEnd = int64(^uint64(0) >> 1)
	}
	return iv.EnterSeq < bEnd && other.EnterSeq < aEnd
}

func (iv Interval) String() string {
	arg := ""
	if iv.HasArg {
		arg = fmt.Sprintf("(%d)", iv.Arg)
	}
	return fmt.Sprintf("%s %s%s req@%d enter@%d exit@%d", iv.Proc, iv.Op, arg, iv.RequestSeq, iv.EnterSeq, iv.ExitSeq)
}

// Intervals reconstructs operation executions from the trace. Matching is
// per process: a Request is attached to the next Enter with the same
// process and op; an Exit closes the most recent open Enter with the same
// process and op (so properly nested executions are supported). Requests
// that never reached an Enter — waiters still blocked at trace end — are
// emitted as request-only intervals (EnterSeq == 0, Started() false), so
// FCFS-style oracles can see overtaken processes that never got in. The
// result is ordered by EnterSeq, with request-only intervals appended at
// the end in RequestSeq order. An error is reported for unmatched Exit
// events or mismatched nesting, which indicate an instrumentation bug in
// a solution.
func (t Trace) Intervals() ([]Interval, error) {
	type key struct {
		proc int
		op   string
	}
	pendingReq := map[key][]Event{} // FIFO of requests awaiting their Enter
	openStack := map[key][]int{}    // indices into out of open intervals
	var out []Interval

	for _, e := range t {
		k := key{e.ProcID, e.Op}
		switch e.Kind {
		case KindRequest:
			pendingReq[k] = append(pendingReq[k], e)
		case KindEnter:
			iv := Interval{
				ProcID:   e.ProcID,
				Proc:     e.Proc,
				Op:       e.Op,
				Arg:      e.Arg,
				HasArg:   e.HasArg,
				EnterSeq: e.Seq,
			}
			if reqs := pendingReq[k]; len(reqs) > 0 {
				iv.RequestSeq = reqs[0].Seq
				if !iv.HasArg && reqs[0].HasArg {
					iv.Arg = reqs[0].Arg
					iv.HasArg = true
				}
				pendingReq[k] = reqs[1:]
			}
			out = append(out, iv)
			openStack[k] = append(openStack[k], len(out)-1)
		case KindExit:
			st := openStack[k]
			if len(st) == 0 {
				return nil, fmt.Errorf("trace: exit without enter: %s", e)
			}
			idx := st[len(st)-1]
			openStack[k] = st[:len(st)-1]
			out[idx].ExitSeq = e.Seq
		case KindMark:
			// annotations do not affect intervals
		}
	}
	// Blocked-forever waiters: requests with no matching Enter become
	// request-only intervals so they stay visible to priority oracles.
	waiting := len(out)
	for _, reqs := range pendingReq {
		for _, e := range reqs {
			out = append(out, Interval{
				ProcID:     e.ProcID,
				Proc:       e.Proc,
				Op:         e.Op,
				Arg:        e.Arg,
				HasArg:     e.HasArg,
				RequestSeq: e.Seq,
			})
		}
	}
	sort.Slice(out[waiting:], func(i, j int) bool {
		return out[waiting+i].RequestSeq < out[waiting+j].RequestSeq
	})
	return out, nil
}

// MustIntervals is Intervals panicking on malformed traces; for use in
// tests and benchmarks where instrumentation is known good.
func (t Trace) MustIntervals() []Interval {
	ivs, err := t.Intervals()
	if err != nil {
		panic(err)
	}
	return ivs
}

// OverlappingPairs returns every pair of executions whose Enter..Exit spans
// intersect, excluding pairs executed by the same process (a process cannot
// overlap itself; nested instrumentation would be reported spuriously).
func OverlappingPairs(ivs []Interval) [][2]Interval {
	var out [][2]Interval
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].ProcID == ivs[j].ProcID {
				continue
			}
			if ivs[i].OverlapsExecution(ivs[j]) {
				out = append(out, [2]Interval{ivs[i], ivs[j]})
			}
		}
	}
	return out
}
