package trace

import (
	"fmt"
	"sort"
	"strings"
)

// OpStats summarizes the executions of one operation in a trace.
type OpStats struct {
	Op         string
	Executions int
	// MaxConcurrent is the largest number of simultaneously executing
	// instances of this operation.
	MaxConcurrent int
	// AvgQueue and MaxQueue measure waiting as the number of trace events
	// between an execution's request and its admission — a unitless
	// queueing-delay proxy that is exact and reproducible on
	// deterministic traces (wall-clock waits are meaningless there).
	AvgQueue float64
	MaxQueue int64
}

// Stats computes per-operation statistics for the trace. Operations with
// no completed executions still appear if they entered.
func (t Trace) Stats() ([]OpStats, error) {
	ivs, err := t.Intervals()
	if err != nil {
		return nil, err
	}
	byOp := map[string][]Interval{}
	for _, iv := range ivs {
		byOp[iv.Op] = append(byOp[iv.Op], iv)
	}
	var out []OpStats
	for op, list := range byOp {
		s := OpStats{Op: op}
		var queued int64
		waits := 0
		for _, iv := range list {
			if !iv.Started() {
				// A request-only interval never executed; it contributes
				// neither an execution nor a measurable queueing delay.
				continue
			}
			s.Executions++
			if iv.RequestSeq > 0 {
				q := iv.EnterSeq - iv.RequestSeq - 1
				queued += q
				waits++
				if q > s.MaxQueue {
					s.MaxQueue = q
				}
			}
		}
		if waits > 0 {
			s.AvgQueue = float64(queued) / float64(waits)
		}
		// Max concurrency by sweep over enter/exit boundaries.
		type boundary struct {
			seq   int64
			delta int
		}
		var bs []boundary
		for _, iv := range list {
			if !iv.Started() {
				continue
			}
			bs = append(bs, boundary{iv.EnterSeq, +1})
			end := iv.ExitSeq
			if iv.Open() {
				end = int64(^uint64(0) >> 1)
			}
			bs = append(bs, boundary{end, -1})
		}
		sort.Slice(bs, func(i, j int) bool {
			if bs[i].seq != bs[j].seq {
				return bs[i].seq < bs[j].seq
			}
			return bs[i].delta < bs[j].delta // exits before enters at a tie
		})
		cur := 0
		for _, b := range bs {
			cur += b.delta
			if cur > s.MaxConcurrent {
				s.MaxConcurrent = cur
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out, nil
}

// RenderStats formats per-op statistics as an aligned table.
func RenderStats(stats []OpStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %8s %10s %9s\n", "op", "execs", "maxconc", "avgqueue", "maxqueue")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-12s %6d %8d %10.1f %9d\n", s.Op, s.Executions, s.MaxConcurrent, s.AvgQueue, s.MaxQueue)
	}
	return b.String()
}
