package trace

import (
	"strings"
	"testing"

	"repro/internal/kernel"
)

// buildStatsTrace constructs a trace with known concurrency and queueing.
func buildStatsTrace(t *testing.T) Trace {
	t.Helper()
	k := kernel.NewSim()
	r := NewRecorder(k)
	// Two overlapping reads and one queued write.
	for i := 0; i < 2; i++ {
		k.Spawn("reader", func(p *kernel.Proc) {
			r.Request(p, "read", 0)
			r.Enter(p, "read", 0)
			p.Yield()
			p.Yield()
			r.Exit(p, "read", 0)
		})
	}
	k.Spawn("writer", func(p *kernel.Proc) {
		r.Request(p, "write", 0)
		for i := 0; i < 3; i++ {
			p.Yield() // simulate queueing between request and admission
		}
		r.Enter(p, "write", 0)
		r.Exit(p, "write", 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return r.Events()
}

func TestStatsConcurrencyAndQueueing(t *testing.T) {
	tr := buildStatsTrace(t)
	stats, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string]OpStats{}
	for _, s := range stats {
		byOp[s.Op] = s
	}
	read := byOp["read"]
	if read.Executions != 2 {
		t.Fatalf("read execs = %d", read.Executions)
	}
	if read.MaxConcurrent != 2 {
		t.Fatalf("read maxconc = %d, want 2 (the reads overlap)", read.MaxConcurrent)
	}
	write := byOp["write"]
	if write.Executions != 1 || write.MaxConcurrent != 1 {
		t.Fatalf("write stats = %+v", write)
	}
	if write.MaxQueue <= 0 {
		t.Fatalf("write queueing = %d, want > 0 (events occurred between request and enter)", write.MaxQueue)
	}
	if write.AvgQueue != float64(write.MaxQueue) {
		t.Fatalf("avg %v != max %v for a single execution", write.AvgQueue, write.MaxQueue)
	}
}

func TestStatsMalformedTrace(t *testing.T) {
	tr := Trace{{Seq: 1, ProcID: 1, Kind: KindExit, Op: "x"}}
	if _, err := tr.Stats(); err == nil {
		t.Fatal("Stats accepted exit-without-enter")
	}
}

func TestStatsOpenInterval(t *testing.T) {
	k := kernel.NewSim()
	r := NewRecorder(k)
	k.Spawn("p", func(p *kernel.Proc) {
		r.Enter(p, "forever", 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Events().Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].MaxConcurrent != 1 || stats[0].Executions != 1 {
		t.Fatalf("stats = %+v", stats[0])
	}
}

func TestRenderStats(t *testing.T) {
	tr := buildStatsTrace(t)
	stats, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderStats(stats)
	if !strings.Contains(out, "read") || !strings.Contains(out, "maxconc") {
		t.Fatalf("rendering:\n%s", out)
	}
}
