// Package trace records and analyzes execution histories of synchronized
// resources.
//
// The paper's correctness criteria are statements about *histories*: which
// operation executions overlapped (exclusion constraints) and in what order
// waiting requests were admitted (priority constraints). Solutions therefore
// do not self-certify; they record Request/Enter/Exit events into a
// Recorder, and the problem oracles (package problems) judge the resulting
// trace. This keeps the mechanisms honest: a solution is correct exactly
// when every trace it can produce is admissible.
//
// Event ordering is by sequence number, assigned under a single lock, so a
// trace is a linearization of the instrumented points even under the real
// kernel.
package trace

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/kernel"
)

// NoArg is the sentinel callers pass to Request/Enter/Exit when the
// operation has no argument. It is distinct from a legitimate zero
// argument: events recorded with NoArg carry HasArg == false and Arg == 0,
// while an explicit 0 carries HasArg == true. Interval reconstruction uses
// the bit to decide when an Enter's missing argument may be backfilled
// from its Request.
const NoArg int64 = math.MinInt64

// Kind classifies an event.
type Kind int

const (
	// KindRequest marks a process asking to perform an operation; it is
	// recorded before the synchronization mechanism is consulted. Request
	// order defines "time of request" for FCFS-style priority constraints.
	KindRequest Kind = iota
	// KindEnter marks the operation actually beginning to execute on the
	// resource (the mechanism has admitted the process).
	KindEnter
	// KindExit marks the operation completing.
	KindExit
	// KindMark is a free-form annotation used by examples and tests.
	KindMark
)

func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindEnter:
		return "enter"
	case KindExit:
		return "exit"
	case KindMark:
		return "mark"
	}
	return "invalid"
}

// Event is one record in a trace.
type Event struct {
	Seq    int64       // global sequence number, from 1
	Time   kernel.Time // kernel clock at recording
	ProcID int
	Proc   string // process name#id
	Kind   Kind
	Op     string // operation name ("read", "write", "deposit", …)
	Arg    int64  // request parameter (track, wake time, item …); 0 if absent
	HasArg bool   // whether an argument was recorded (false when NoArg was passed)
	Note   string // free-form (KindMark) or extra detail
}

// String formats the event as a fixed-width trace line.
func (e Event) String() string {
	s := fmt.Sprintf("%5d %8d  %-14s %-8s %s", e.Seq, e.Time, e.Proc, e.Kind, e.Op)
	if e.HasArg {
		s += fmt.Sprintf("(%d)", e.Arg)
	}
	if e.Note != "" {
		s += "  # " + e.Note
	}
	return s
}

// cooperativeKernel is the part of kernel.SimKernel the recorder's
// unsynchronized fast path relies on: a clock readable without a lock
// (exactly one process runs at a time, so recording is already
// serialized by the scheduler handoff) and the step-visibility hook the
// exploration pruner consumes.
type cooperativeKernel interface {
	NowCooperative() kernel.Time
	MarkStepVisible()
	NoteTraceDep()
}

// Recorder collects events. It is safe for concurrent use; when the
// kernel is the cooperative SimKernel it skips its own lock entirely (the
// scheduler handoff already serializes and orders every record call).
type Recorder struct {
	k    kernel.Kernel
	coop cooperativeKernel // non-nil: unsynchronized fast path

	// observer, when set, sees every event as it is recorded (streaming
	// oracles hang off this). Called with the recorder's synchronization
	// — i.e. on the recording process's goroutine.
	observer func(Event)

	// ops interns operation-name strings: every event with the same op
	// shares one backing array, so long traces retain O(distinct ops)
	// string bytes and oracle comparisons hit the pointer-equality fast
	// path.
	ops map[string]string

	mu     sync.Mutex
	seq    int64
	events []Event

	// Restored-run suppression (ResumeFrom): the next replay record
	// calls are served from the pre-filled prefix instead of appended.
	replay   int // record calls to suppress
	replayed int // record calls suppressed so far
}

// NewRecorder creates a Recorder stamping events with k's clock. A nil
// kernel is allowed; events then carry time 0.
func NewRecorder(k kernel.Kernel) *Recorder {
	r := &Recorder{k: k, ops: make(map[string]string, 8)}
	if coop, ok := k.(cooperativeKernel); ok {
		r.coop = coop
	}
	return r
}

// SetObserver installs fn to be called with every subsequently recorded
// event, in sequence order, on the recording process's goroutine. A nil
// fn removes the observer. Install before the run starts.
func (r *Recorder) SetObserver(fn func(Event)) { r.observer = fn }

// Reset discards all recorded events, retaining the event buffer and the
// op intern table, so a pooled recorder records in zero-allocation steady
// state. Snapshots obtained earlier become invalid. Reset must not race
// with recording (call it between runs).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq = 0
	r.events = r.events[:0]
	r.replay = 0
	r.replayed = 0
}

// ResumeFrom primes a freshly Reset recorder with the event prefix of a
// restored run (kernel.WithRestore): the prefix is copied into the
// buffer, and the next len(prefix) record calls — the re-driven user
// code re-recording exactly those events — are served from it instead of
// being appended, without consulting the clock, the observer, or the
// kernel's visibility hook. Call it between Reset and the run, on a
// recorder bound to a cooperative kernel; Reset clears any pending
// suppression.
func (r *Recorder) ResumeFrom(prefix Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events[:0], prefix...)
	r.seq = 0
	if n := len(prefix); n > 0 {
		r.seq = prefix[n-1].Seq
	}
	r.replay = len(prefix)
	r.replayed = 0
}

// LenCooperative reports the number of recorded events without locking —
// safe under the SimKernel's cooperative discipline by the same argument
// as the kernel's NowCooperative. The kernel's decision-mark hook
// (SetDecisionMark) uses it from inside the scheduler.
func (r *Recorder) LenCooperative() int { return len(r.events) }

func (r *Recorder) record(p *kernel.Proc, kind Kind, op string, arg int64, note string) Event {
	if r.replayed < r.replay {
		// Restored-run suppression: the re-driven prefix re-records
		// events already in the buffer, so serve the canned event.
		// Unsynchronized by the cooperative-discipline argument
		// (ResumeFrom requires a cooperative kernel).
		e := r.events[r.replayed]
		r.replayed++
		return e
	}
	if r.coop != nil {
		// Cooperative fast path: exactly one process runs at a time and
		// the scheduler handoff orders every access, so neither the
		// recorder's lock nor the kernel clock's is needed.
		r.coop.MarkStepVisible()
		r.coop.NoteTraceDep()
		return r.append(p, r.coop.NowCooperative(), kind, op, arg, note)
	}
	var t kernel.Time
	if r.k != nil {
		t = r.k.Now()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.append(p, t, kind, op, arg, note)
}

// append assumes the caller holds r.mu or is on the cooperative fast
// path.
func (r *Recorder) append(p *kernel.Proc, t kernel.Time, kind Kind, op string, arg int64, note string) Event {
	if canonical, ok := r.ops[op]; ok {
		op = canonical
	} else {
		r.ops[op] = op
	}
	hasArg := arg != NoArg
	if !hasArg {
		arg = 0
	}
	r.seq++
	e := Event{
		Seq:    r.seq,
		Time:   t,
		ProcID: p.ID(),
		Proc:   p.String(),
		Kind:   kind,
		Op:     op,
		Arg:    arg,
		HasArg: hasArg,
		Note:   note,
	}
	r.events = append(r.events, e)
	if r.observer != nil {
		r.observer(e)
	}
	return e
}

// Request records that p asked to perform op with the given argument.
// Pass NoArg when the operation has no argument; an explicit 0 is a
// legitimate argument value.
func (r *Recorder) Request(p *kernel.Proc, op string, arg int64) Event {
	return r.record(p, KindRequest, op, arg, "")
}

// Enter records that p began executing op on the resource.
func (r *Recorder) Enter(p *kernel.Proc, op string, arg int64) Event {
	return r.record(p, KindEnter, op, arg, "")
}

// Exit records that p finished executing op.
func (r *Recorder) Exit(p *kernel.Proc, op string, arg int64) Event {
	return r.record(p, KindExit, op, arg, "")
}

// Mark records a free-form annotation.
func (r *Recorder) Mark(p *kernel.Proc, note string) Event {
	return r.record(p, KindMark, "", NoArg, note)
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events in sequence order.
func (r *Recorder) Events() Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Trace, len(r.events))
	copy(out, r.events)
	return out
}

// Snapshot returns the recorded events without copying.
//
// Aliasing contract: the returned Trace shares the recorder's buffer. It
// is valid only while no further events are recorded and until the next
// Reset; the caller must treat it as read-only and must not append to it.
// Use it where the run is already finished and the trace is consumed
// before the recorder is touched again — the exploration engine's
// judge-then-discard hot path — and Events everywhere the trace outlives
// the recorder.
func (r *Recorder) Snapshot() Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Trace(r.events)
}

// Trace is an ordered event history.
type Trace []Event

// String renders the trace, one event per line.
func (t Trace) String() string {
	var b strings.Builder
	for _, e := range t {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Filter returns the events matching every non-zero criterion: kind (use
// kind < 0 to match all kinds), op ("" matches all ops).
func (t Trace) Filter(kind Kind, op string) Trace {
	var out Trace
	for _, e := range t {
		if kind >= 0 && e.Kind != kind {
			continue
		}
		if op != "" && e.Op != op {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Ops returns the distinct operation names appearing in the trace, in
// first-appearance order.
func (t Trace) Ops() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range t {
		if e.Op == "" || seen[e.Op] {
			continue
		}
		seen[e.Op] = true
		out = append(out, e.Op)
	}
	return out
}
