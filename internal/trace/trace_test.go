package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

// run executes fn as a single sim-kernel process and returns the recorder.
func run(t *testing.T, fn func(r *Recorder, p *kernel.Proc)) *Recorder {
	t.Helper()
	k := kernel.NewSim()
	r := NewRecorder(k)
	k.Spawn("p", func(p *kernel.Proc) { fn(r, p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecorderSequencesEvents(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Request(p, "read", 0)
		r.Enter(p, "read", 0)
		r.Exit(p, "read", 0)
	})
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if evs[0].Kind != KindRequest || evs[1].Kind != KindEnter || evs[2].Kind != KindExit {
		t.Fatalf("kinds = %v %v %v", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	if evs[0].Proc != "p#1" {
		t.Fatalf("proc = %q", evs[0].Proc)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Enter(p, "a", 0)
	})
	evs := r.Events()
	evs[0].Op = "mutated"
	if r.Events()[0].Op != "a" {
		t.Fatal("Events exposed internal storage")
	}
}

func TestFilter(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Request(p, "read", 0)
		r.Enter(p, "read", 0)
		r.Request(p, "write", 0)
		r.Exit(p, "read", 0)
	})
	tr := r.Events()
	if got := len(tr.Filter(KindRequest, "")); got != 2 {
		t.Fatalf("requests = %d, want 2", got)
	}
	if got := len(tr.Filter(KindRequest, "write")); got != 1 {
		t.Fatalf("write requests = %d, want 1", got)
	}
	if got := len(tr.Filter(-1, "read")); got != 3 {
		t.Fatalf("read events = %d, want 3", got)
	}
}

func TestOps(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Enter(p, "b", 0)
		r.Enter(p, "a", 0)
		r.Enter(p, "b", 0)
	})
	ops := r.Events().Ops()
	if len(ops) != 2 || ops[0] != "b" || ops[1] != "a" {
		t.Fatalf("ops = %v", ops)
	}
}

func TestIntervalsMatching(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Request(p, "seek", 7)
		r.Enter(p, "seek", 7)
		r.Exit(p, "seek", 7)
		r.Enter(p, "idle", 0) // no request, never exits
	})
	ivs, err := r.Events().Intervals()
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d, want 2", len(ivs))
	}
	seek := ivs[0]
	if seek.Op != "seek" || seek.Arg != 7 || seek.RequestSeq != 1 || seek.EnterSeq != 2 || seek.ExitSeq != 3 {
		t.Fatalf("seek interval = %+v", seek)
	}
	if !ivs[1].Open() {
		t.Fatal("idle interval should be open")
	}
}

func TestIntervalsArgFromRequest(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Request(p, "seek", 42)
		r.Enter(p, "seek", NoArg) // arg omitted at enter: taken from request
		r.Exit(p, "seek", NoArg)
	})
	ivs := r.Events().MustIntervals()
	if ivs[0].Arg != 42 || !ivs[0].HasArg {
		t.Fatalf("arg = %d (hasArg %v), want 42 (inherited from request)", ivs[0].Arg, ivs[0].HasArg)
	}
}

// Regression: an explicit zero argument at Enter is a legitimate value,
// not "no argument" — it must not be overwritten by the request's arg.
func TestIntervalsExplicitZeroArgNotBackfilled(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Request(p, "seek", 42)
		r.Enter(p, "seek", 0) // an explicit track 0, not an omission
		r.Exit(p, "seek", NoArg)
	})
	ivs := r.Events().MustIntervals()
	if ivs[0].Arg != 0 || !ivs[0].HasArg {
		t.Fatalf("interval = %+v; explicit zero arg was conflated with no-arg", ivs[0])
	}
}

func TestNoArgEventsCarryNoArg(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Request(p, "read", NoArg)
		r.Enter(p, "read", NoArg)
		r.Exit(p, "read", NoArg)
	})
	for _, e := range r.Events() {
		if e.HasArg || e.Arg != 0 {
			t.Fatalf("event %+v: NoArg should record HasArg=false, Arg=0", e)
		}
	}
	ivs := r.Events().MustIntervals()
	if ivs[0].HasArg {
		t.Fatalf("interval %+v: no event carried an arg", ivs[0])
	}
}

// Regression: a Request that never reaches its Enter (a blocked-forever
// waiter, e.g. on a truncated trace) must still appear in interval
// reconstruction as a request-only open interval rather than vanish.
func TestIntervalsEmitRequestOnlyWaiters(t *testing.T) {
	k := kernel.NewSim()
	r := NewRecorder(k)
	k.Spawn("w", func(p *kernel.Proc) {
		r.Request(p, "write", 5)
		r.Enter(p, "write", 5)
		r.Exit(p, "write", NoArg)
	})
	k.Spawn("blocked", func(p *kernel.Proc) {
		r.Request(p, "write", 6)
		// never admitted: the trace is truncated before its Enter
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ivs := r.Events().MustIntervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d, want 2 (one executed, one request-only):\n%v", len(ivs), ivs)
	}
	exec, waiter := ivs[0], ivs[1]
	if !exec.Started() || exec.Op != "write" || exec.Arg != 5 {
		t.Fatalf("executed interval = %+v", exec)
	}
	if waiter.Started() || !waiter.Open() || waiter.RequestSeq == 0 || waiter.Arg != 6 || !waiter.HasArg {
		t.Fatalf("request-only interval = %+v", waiter)
	}
	// A never-admitted waiter executes nothing: it overlaps no execution,
	// and contributes no executions or concurrency to Stats.
	if waiter.OverlapsExecution(exec) || exec.OverlapsExecution(waiter) {
		t.Fatal("request-only interval reported as overlapping an execution")
	}
	stats, err := r.Events().Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Executions != 1 || stats[0].MaxConcurrent != 1 {
		t.Fatalf("stats = %+v; request-only interval should not count as an execution", stats)
	}
}

func TestIntervalsRejectsUnmatchedExit(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Exit(p, "read", 0)
	})
	if _, err := r.Events().Intervals(); err == nil {
		t.Fatal("Intervals accepted exit-without-enter")
	}
}

func TestIntervalsNested(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Enter(p, "outer", 0)
		r.Enter(p, "inner", 0)
		r.Exit(p, "inner", 0)
		r.Exit(p, "outer", 0)
	})
	ivs := r.Events().MustIntervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if ivs[0].Op != "outer" || ivs[0].ExitSeq != 4 {
		t.Fatalf("outer = %+v", ivs[0])
	}
	if ivs[1].Op != "inner" || ivs[1].ExitSeq != 3 {
		t.Fatalf("inner = %+v", ivs[1])
	}
}

func TestOverlapDetection(t *testing.T) {
	k := kernel.NewSim()
	r := NewRecorder(k)
	// Two processes, interleaved via yields so their executions overlap.
	for i := 0; i < 2; i++ {
		k.Spawn("rw", func(p *kernel.Proc) {
			r.Enter(p, "read", 0)
			p.Yield()
			r.Exit(p, "read", 0)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ivs := r.Events().MustIntervals()
	pairs := OverlappingPairs(ivs)
	if len(pairs) != 1 {
		t.Fatalf("overlapping pairs = %d, want 1\n%s", len(pairs), r.Events())
	}
}

func TestNoOverlapWhenSequential(t *testing.T) {
	r := NewRecorder(nil)
	k := kernel.NewSim()
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *kernel.Proc) {
			r.Enter(p, "write", 0)
			r.Exit(p, "write", 0)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pairs := OverlappingPairs(r.Events().MustIntervals()); len(pairs) != 0 {
		t.Fatalf("sequential executions reported overlapping: %v", pairs)
	}
}

func TestSameProcessNeverOverlapsItself(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Enter(p, "outer", 0)
		r.Enter(p, "inner", 0)
		r.Exit(p, "inner", 0)
		r.Exit(p, "outer", 0)
	})
	if pairs := OverlappingPairs(r.Events().MustIntervals()); len(pairs) != 0 {
		t.Fatalf("self-overlap reported: %v", pairs)
	}
}

func TestTraceStringRendering(t *testing.T) {
	r := run(t, func(r *Recorder, p *kernel.Proc) {
		r.Request(p, "seek", 9)
		r.Mark(p, "hello")
	})
	s := r.Events().String()
	if !strings.Contains(s, "seek(9)") || !strings.Contains(s, "# hello") {
		t.Fatalf("rendering missing fields:\n%s", s)
	}
}

// Property: for any sequence of enter/exit flags on a single op and proc,
// Intervals either errors (on mismatched nesting) or returns one interval
// per Enter, with exits properly paired LIFO.
func TestIntervalsPropertyBalanced(t *testing.T) {
	f := func(flags []bool) bool {
		k := kernel.NewSim()
		r := NewRecorder(k)
		depth := 0
		valid := true
		k.Spawn("p", func(p *kernel.Proc) {
			for _, enter := range flags {
				if enter {
					r.Enter(p, "op", 0)
					depth++
				} else {
					if depth == 0 {
						valid = false
					}
					r.Exit(p, "op", 0)
					if depth > 0 {
						depth--
					}
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		ivs, err := r.Events().Intervals()
		if !valid {
			return err != nil
		}
		if err != nil {
			return false
		}
		enters := 0
		for _, f := range flags {
			if f {
				enters++
			}
		}
		return len(ivs) == enters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecorderEnterExit(b *testing.B) {
	k := kernel.NewReal()
	r := NewRecorder(k)
	done := make(chan struct{})
	k.Spawn("p", func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Enter(p, "op", 0)
			r.Exit(p, "op", 0)
		}
		close(done)
	})
	<-done
}

func BenchmarkIntervalsReconstruction(b *testing.B) {
	k := kernel.NewSim()
	r := NewRecorder(k)
	k.Spawn("p", func(p *kernel.Proc) {
		for i := 0; i < 1000; i++ {
			r.Request(p, "op", int64(i))
			r.Enter(p, "op", int64(i))
			r.Exit(p, "op", int64(i))
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	tr := r.Events()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Intervals(); err != nil {
			b.Fatal(err)
		}
	}
}
